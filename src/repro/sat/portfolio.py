"""Racing solver portfolio: N backend configurations, one answer.

A :class:`PortfolioSolver` presents the same incremental surface as a
single :class:`~repro.sat.solver.Solver` but executes each ``solve`` as a
race between worker processes, one per backend configuration.  All
workers hold the same clause store (the parent streams clause deltas to
them before each solve); the first complete answer wins and the losers
are *cancelled cooperatively* — the parent sets a shared event which the
CDCL engine polls between conflicts, so a losing worker abandons its
search but keeps its process, its clause store, and everything it learnt
for the next round.  That is what makes the portfolio viable inside the
DIP loop, where hundreds of incremental solve calls share one miter.

``solve`` returns the moment the winner answers; losers' replies are
drained lazily at the start of the *next* round, so their wind-down
overlaps whatever the caller does between solves (oracle queries,
constraint pinning).  A round therefore costs the *fastest*
configuration's search time plus IPC, not the slowest's.

Because every backend is a complete solver, the *result* of a race is
deterministic — sat/unsat never depends on which worker wins; only the
model (when SAT) and the wall-clock do.

Degradation is always available and always safe: if worker processes
cannot be spawned (or all of them die), the portfolio replays its clause
log into an inline backend of the first configuration and continues
serially.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection

from repro.errors import SolverError

#: Seconds between liveness checks while waiting on worker replies.  A
#: slow reply is NOT a failure — hard miter solves legitimately run for
#: hours — so the parent waits indefinitely, merely confirming at this
#: cadence that the worker *processes* are still alive.
_LIVENESS_POLL = 10.0


def _portfolio_worker(config_name, conn, cancel):
    """Worker loop: mirror clause deltas, answer solve requests.

    Runs one backend for the whole portfolio lifetime.  Exactly one reply
    is sent per ``solve`` request: ``("sat", name, model, stats)``,
    ``("unsat", name, None, stats)``, ``("cancelled", name)``, or
    ``("error", name, repr)`` — the parent relies on this invariant to
    keep the pipes in lockstep.  A ``reset`` request rebuilds the backend
    in place (fresh clause store, same process), which is what lets one
    worker fleet serve several attack phases — e.g. every unrolling
    depth of a sequential SAT attack — without paying the spawn cost
    again.
    """
    from repro.sat.backend import make_backend

    try:
        try:
            backend = make_backend(config_name)
            backend.interrupt = cancel.is_set
        except Exception as error:  # noqa: BLE001 - reported to parent
            # Construction can fail for a custom backend whose factory is
            # absent or broken in this child (e.g. spawn start method).
            # The early error reply is consumed as the first solve's
            # answer, so the parent sees a diagnostic, not a silent EOF.
            conn.send(("error", config_name, repr(error)))
            return
        broken = None  # deferred 'load' failure, reported at next solve
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "load":
                _, num_vars, clauses = message
                try:
                    backend.ensure_vars(num_vars)
                    for clause in clauses:
                        backend.add_clause(clause)
                except Exception as error:  # noqa: BLE001
                    broken = repr(error)
            elif kind == "solve":
                _, assumptions = message
                if broken is not None:
                    conn.send(("error", config_name, broken))
                    return
                try:
                    sat = backend.solve(assumptions=assumptions)
                except Exception as error:  # noqa: BLE001 - reported to parent
                    conn.send(("error", config_name, repr(error)))
                    return
                if sat is None:
                    conn.send(("cancelled", config_name))
                elif sat:
                    # Bit-packed: a solve reply is O(num_vars/8) bytes,
                    # not a num_vars-element pickled list (num_vars
                    # grows with every pinned DIP, so this is the
                    # dominant IPC term of a long attack).
                    num_vars = backend.num_vars
                    packed = bytearray((num_vars + 7) // 8)
                    for var in range(1, num_vars + 1):
                        if backend.model_value(var):
                            packed[(var - 1) >> 3] |= 1 << ((var - 1) & 7)
                    conn.send(("sat", config_name,
                               (bytes(packed), num_vars), backend.stats()))
                else:
                    conn.send(("unsat", config_name, None, backend.stats()))
            elif kind == "reset":
                # Fresh backend, same process: the clause store and all
                # learnt state vanish, the spawn cost does not recur.
                try:
                    backend = make_backend(config_name)
                    backend.interrupt = cancel.is_set
                    broken = None
                except Exception as error:  # noqa: BLE001
                    broken = repr(error)
            elif kind == "quit":
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class _Worker:
    __slots__ = ("name", "process", "conn", "cancel", "alive", "pending")

    def __init__(self, name, process, conn, cancel):
        self.name = name
        self.process = process
        self.conn = conn
        self.cancel = cancel
        self.alive = True
        self.pending = False  # a solve reply is still owed to the parent


class PortfolioSolver:
    """Incremental solver that races backend configurations per solve."""

    def __init__(self, configs, start_method=None):
        configs = tuple(configs)
        if not configs:
            raise SolverError("portfolio needs at least one configuration")
        if len(set(configs)) != len(configs):
            raise SolverError("portfolio repeats a configuration")
        from repro.sat.backend import backend_names

        known = set(backend_names())
        for name in configs:
            if name not in known:
                raise SolverError(f"unknown solver backend {name!r}")
        self.configs = configs
        self._num_vars = 0
        self._clauses = []       # full clause log (worker respawn/fallback)
        self._sent_vars = 0
        self._sent_clauses = 0
        self._root_unsat = False
        self._unit_signs = {}    # var -> sign of a root-level unit clause
        self._model = None       # (packed bitmap, num_vars) of the winner
        self._workers = None     # started lazily on first racing solve
        self._inline = None      # serial fallback backend
        self._inline_sent = 0
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.num_solve_calls = 0
        self.num_resets = 0
        self.num_spawns = 0      # worker-fleet generations started
        self.streamed_clauses = 0  # delta clauses shipped (once per race)
        self.wins = {name: 0 for name in configs}
        self.last_winner = None
        self._winner_stats = {}
        #: Part of the SolverBackend surface: a zero-arg callable polled
        #: while a race is in flight; when it turns true every worker is
        #: cancelled and ``solve`` returns ``None`` (unknown) — unless a
        #: complete answer arrives first, which always wins.
        self.interrupt = None

    # ------------------------------------------------------------------
    # Problem construction (mirrors Solver's surface)
    # ------------------------------------------------------------------
    def new_var(self):
        self._num_vars += 1
        return self._num_vars

    def ensure_vars(self, up_to):
        if up_to > self._num_vars:
            self._num_vars = int(up_to)

    @property
    def num_vars(self):
        return self._num_vars

    def add_clause(self, literals):
        if self._root_unsat:
            return False
        clause = []
        seen = set()
        for lit in literals:
            lit = int(lit)
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(
                    f"bad literal {lit} (allocate variables first)")
            if -lit in seen:
                return True  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._root_unsat = True
            return False
        self._clauses.append(clause)
        if len(clause) == 1:
            # Honor the backend contract's root-UNSAT signal at least
            # for directly contradictory unit clauses (the CDCL engine
            # detects more via propagation).
            lit = clause[0]
            var, sign = abs(lit), lit > 0
            prior = self._unit_signs.setdefault(var, sign)
            if prior != sign:
                self._root_unsat = True
                return False
        return True

    def add_cnf(self, cnf):
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions=()):
        self.num_solve_calls += 1
        if self._root_unsat:
            return False
        if self.interrupt is not None and self.interrupt():
            self._model = None  # a prior round's model must not leak
            return None
        assumptions = [int(lit) for lit in assumptions]
        for lit in assumptions:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"bad assumption literal {lit}")
        if self._inline is not None:
            return self._solve_inline(assumptions)
        try:
            self._ensure_workers()
        except OSError:
            return self._solve_inline(assumptions)
        return self._race(assumptions)

    def model_value(self, var):
        if self._inline is not None:
            return self._inline.model_value(var)
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        packed, num_vars = self._model
        if not 1 <= var <= num_vars:
            return False  # allocated after the winning model was taken
        return bool(packed[(var - 1) >> 3] & (1 << ((var - 1) & 7)))

    def model(self):
        if self._inline is not None:
            return self._inline.model()
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        return {var: self.model_value(var)
                for var in range(1, self._num_vars + 1)}

    def stats(self):
        stats = {
            "backend": "portfolio",
            "portfolio": list(self.configs),
            "vars": self._num_vars,
            "clauses": len(self._clauses),
            "solve_calls": self.num_solve_calls,
            "wins": dict(self.wins),
            "winner": self.last_winner,
            "inline_fallback": self._inline is not None,
            "resets": self.num_resets,
            "spawns": self.num_spawns,
            # Cumulative delta clauses shipped to the fleet — each clause
            # crosses the pipe once per race round, never re-sent, so
            # this tracks len(clauses), not clauses x solves.
            "streamed_clauses": self.streamed_clauses,
        }
        if self._winner_stats:
            stats["winner_stats"] = dict(self._winner_stats)
        return stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self):
        """Empty the problem while keeping the worker fleet alive.

        The parent's clause log, variable count, and model are cleared;
        every live worker is told to rebuild its backend in place (after
        draining any reply a cancelled solve still owes), so subsequent
        ``solve`` calls race the *same processes* on a fresh formula.
        This is what lets a sequential attack reuse one fleet across its
        unrolling depths instead of respawning per depth — cheap under
        ``fork``, substantial on ``spawn`` platforms.  If the portfolio
        had degraded to inline solving, reset also clears the fallback
        so the next solve re-attempts worker spawning.
        """
        self.num_resets += 1
        self._num_vars = 0
        self._clauses = []
        self._sent_vars = 0
        self._sent_clauses = 0
        self._root_unsat = False
        self._unit_signs = {}
        self._model = None
        self.last_winner = None
        self._winner_stats = {}
        if self._inline is not None:
            self._inline = None
            self._inline_sent = 0
            return
        for worker in self._live_workers():
            if not self._drain(worker):
                continue
            try:
                worker.conn.send(("reset",))
            except (OSError, ValueError):
                worker.alive = False

    def close(self):
        """Shut the worker processes down (idempotent)."""
        workers, self._workers = self._workers, None
        if not workers:
            return
        for worker in workers:
            if not worker.alive:
                continue
            try:
                worker.cancel.set()
                # Drain the reply a cancelled worker may still owe so its
                # (possibly pipe-buffer-sized) send cannot wedge the quit.
                if worker.pending and worker.conn.poll(2.0):
                    worker.conn.recv()
                worker.conn.send(("quit",))
            except (OSError, ValueError, EOFError):
                pass
        for worker in workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(timeout=2.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_workers(self):
        if self._workers is not None:
            return
        # Fresh workers hold an empty clause store: rewind the stream
        # high-water marks so the next race replays the full log (this
        # is what makes solve() after close() respawn correctly).
        self._sent_clauses = 0
        self._sent_vars = 0
        workers = []
        try:
            for name in self.configs:
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                cancel = self._ctx.Event()
                process = self._ctx.Process(
                    target=_portfolio_worker,
                    args=(name, child_conn, cancel),
                    name=f"portfolio-{name}", daemon=True)
                process.start()
                child_conn.close()
                workers.append(_Worker(name, process, parent_conn, cancel))
        except OSError:
            # Reap the subset that did start before propagating (the
            # caller falls back to inline solving) — half a portfolio
            # must not linger blocked on its pipe.
            self._workers = workers
            self.close()
            raise
        self._workers = workers
        self.num_spawns += 1

    def _live_workers(self):
        return [w for w in (self._workers or ()) if w.alive]

    def _drain(self, worker):
        """Collect (and discard) the reply a cancelled worker still owes.

        The cancel event stays set until the stale reply is in hand, so a
        loser that never reached a poll point keeps being asked to stop.
        Returns True iff the worker is still usable.
        """
        if not worker.pending:
            return worker.alive
        while not worker.conn.poll(_LIVENESS_POLL):
            if not worker.process.is_alive():  # pragma: no cover - crash
                worker.alive = False
                return False
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            worker.alive = False
            return False
        worker.pending = False
        if message[0] == "error":
            worker.alive = False
        return worker.alive

    def _race(self, assumptions):
        workers = [w for w in self._live_workers() if self._drain(w)]
        if not workers:
            return self._solve_inline(assumptions)

        # Stream the clause delta accumulated since the last solve.
        delta = self._clauses[self._sent_clauses:]
        need_load = bool(delta) or self._num_vars > self._sent_vars
        for worker in workers:
            worker.cancel.clear()
            try:
                if need_load:
                    worker.conn.send(("load", self._num_vars, delta))
                worker.conn.send(("solve", assumptions))
                worker.pending = True
            except (OSError, ValueError):
                worker.alive = False
        self._sent_clauses = len(self._clauses)
        self._sent_vars = self._num_vars
        self.streamed_clauses += len(delta)
        outstanding = [w for w in workers if w.alive]
        if not outstanding:
            return self._solve_inline(assumptions)

        winner = None
        interrupted = False
        while winner is None and outstanding:
            if not interrupted and self.interrupt is not None \
                    and self.interrupt():
                interrupted = True
                for worker in outstanding:
                    worker.cancel.set()
            ready = multiprocessing.connection.wait(
                [w.conn for w in outstanding],
                timeout=0.25 if (self.interrupt is not None
                                 and not interrupted) else _LIVENESS_POLL)
            if not ready:
                # No reply yet — a hard instance, not a failure.  Cull
                # only workers whose process actually died and keep
                # waiting for the rest.
                for worker in list(outstanding):
                    if not worker.process.is_alive():  # pragma: no cover
                        worker.alive = False
                        worker.pending = False
                        outstanding.remove(worker)
                continue
            ready = set(ready)
            # Iterate in configuration order so simultaneous finishers
            # resolve to a deterministic winner.
            for worker in [w for w in outstanding if w.conn in ready]:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    worker.alive = False
                    outstanding.remove(worker)
                    continue
                worker.pending = False
                kind = message[0]
                if kind in ("sat", "unsat"):
                    winner = message
                    for other in self._live_workers():
                        if other is not worker and other.pending:
                            other.cancel.set()
                    break
                if kind == "error":
                    worker.alive = False
                outstanding.remove(worker)

        if winner is None:
            if interrupted:
                self._model = None
                return None  # cancelled before any complete answer
            # Every worker died or errored; fall back to inline solving.
            return self._solve_inline(assumptions)
        kind, name, model, stats = winner
        self.wins[name] += 1
        self.last_winner = name
        self._winner_stats = stats
        if kind == "sat":
            self._model = model  # (packed bitmap, num_vars)
            return True
        self._model = None
        return False

    def _solve_inline(self, assumptions):
        if self._inline is None:
            self.close()
            from repro.sat.backend import make_backend

            self._inline = make_backend(self.configs[0])
        self._inline.ensure_vars(self._num_vars)
        for clause in self._clauses[self._inline_sent:]:
            self._inline.add_clause(clause)
        self._inline_sent = len(self._clauses)
        self._inline.interrupt = self.interrupt
        return self._inline.solve(assumptions=assumptions)
