"""Model enumeration on top of the CDCL solver."""

from __future__ import annotations

from repro.sat.solver import Solver


def enumerate_models(cnf, project_to=None, limit=None):
    """Yield models of ``cnf`` as dicts var->bool.

    ``project_to`` restricts both the reported variables and the blocking
    clauses to that variable subset (projected model enumeration), which is
    how key-space enumeration is done in the attack tests. ``limit`` caps
    the number of models produced.
    """
    solver = Solver()
    if not solver.add_cnf(cnf):
        return
    variables = sorted(project_to) if project_to is not None \
        else list(range(1, cnf.num_vars + 1))
    produced = 0
    while limit is None or produced < limit:
        if not solver.solve():
            return
        model = {var: solver.model_value(var) for var in variables}
        yield dict(model)
        produced += 1
        blocking = [(-var if model[var] else var) for var in variables]
        if not blocking or not solver.add_clause(blocking):
            return


def count_models(cnf, project_to=None, limit=None):
    """Number of (projected) models, up to ``limit``."""
    return sum(1 for _ in enumerate_models(cnf, project_to, limit))
