"""Optional native solver backend ("escape Python").

The registry always lists ``native``; what you get from the factory
depends on the host:

1. **python-sat** (``pysat``) importable — :class:`PySatBackend`, an
   in-process incremental engine (Minisat22 by default, override with
   ``REPRO_PYSAT_SOLVER``).  Assumptions map straight through;
   cooperative interrupt is implemented by solving in conflict-budget
   slices and polling the callback between slices.
2. **$REPRO_SAT_BINARY** set — :class:`DimacsSubprocessBackend`, which
   re-emits the accumulated clause set as DIMACS on every ``solve`` and
   runs the user-supplied binary (kissat, cadical, minisat, ...).  The
   value is ``shlex``-split, so it may carry arguments.  Two calling
   conventions are supported via ``REPRO_SAT_STYLE``:

   * ``competition`` (default): ``<cmd> <input.cnf>``, answer as
     SAT-competition ``s``/``v`` lines on stdout (kissat, cadical,
     glucose ``-model``, picosat, and ``python -m
     repro.sat.dimacs_engine``);
   * ``minisat``: ``<cmd> <input.cnf> <result.txt>``, answer in the
     result file (MiniSat's classic interface).

   Assumptions become per-solve unit clauses (the formula file is
   rebuilt each call, so they never pollute later solves); interrupt is
   polled while the subprocess runs and kills it on trigger.
3. Neither — :class:`NativeUnavailableBackend`, a stub that satisfies
   the backend surface (so the registry can list it and ``stats()``
   works) but raises an actionable :class:`~repro.errors.SolverError`
   from every solving entry point.

All three keep the incremental contract of
:class:`repro.sat.backend.SolverBackend`: ``add_clause`` between
``solve`` calls, assumptions honored per call, ``solve`` returning
``None`` when interrupted.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import sys
import tempfile
import time
import weakref

from repro.errors import SolverError

#: Conflicts per pysat solve slice between interrupt polls.
_PYSAT_SLICE_CONFLICTS = 256

#: Seconds between interrupt polls while a subprocess engine runs.
_SUBPROCESS_POLL_SECONDS = 0.01


def engine_probe():
    """Discover the best available native engine.

    Returns ``(kind, detail)`` where ``kind`` is ``"pysat"``,
    ``"dimacs"`` or ``None``; for ``"dimacs"`` the detail is the argv
    prefix, for ``None`` it is a human-readable reason.
    """
    try:
        import pysat.solvers  # noqa: F401
    except ImportError:
        pass
    else:
        return "pysat", None
    binary = os.environ.get("REPRO_SAT_BINARY", "").strip()
    if binary:
        return "dimacs", tuple(shlex.split(binary))
    return None, ("no native engine: python-sat is not importable and "
                  "REPRO_SAT_BINARY is unset")


def make_native_backend():
    """Factory registered as the ``native`` backend."""
    kind, detail = engine_probe()
    if kind == "pysat":
        return PySatBackend()
    if kind == "dimacs":
        style = os.environ.get("REPRO_SAT_STYLE", "competition").strip()
        return DimacsSubprocessBackend(detail, style=style)
    return NativeUnavailableBackend(detail)


class _ClauseStoreMixin:
    """Shared literal bookkeeping for the native backends.

    Keeps the same validation surface as the in-tree backends: literals
    must reference allocated variables, the empty clause flips the
    store root-UNSAT, and ``add_clause`` reports ``False`` from then on.
    """

    def __init__(self):
        self._num_vars = 0
        self._root_unsat = False
        self._model = None
        self.num_solve_calls = 0
        self.interrupt = None

    def new_var(self):
        self._num_vars += 1
        return self._num_vars

    def ensure_vars(self, up_to):
        while self._num_vars < up_to:
            self.new_var()

    @property
    def num_vars(self):
        return self._num_vars

    def _check_clause(self, literals):
        clause = [int(lit) for lit in literals]
        for lit in clause:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(
                    f"bad literal {lit} (allocate variables first)")
        return clause

    def add_cnf(self, cnf):
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def model_value(self, var):
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        return bool(self._model.get(var, False))

    def model(self):
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        return {var: self.model_value(var)
                for var in range(1, self._num_vars + 1)}


class PySatBackend(_ClauseStoreMixin):
    """python-sat behind the backend surface (in-process, incremental)."""

    backend_name = "native"

    def __init__(self, solver_name=None):
        super().__init__()
        from pysat.solvers import Solver as _PySatSolver

        name = solver_name or os.environ.get("REPRO_PYSAT_SOLVER",
                                             "minisat22")
        try:
            self._engine = _PySatSolver(name=name)
        except Exception as exc:
            raise SolverError(f"pysat solver {name!r} unavailable: {exc}")
        self._engine_name = name
        self._num_clauses = 0

    def add_clause(self, literals):
        if self._root_unsat:
            return False
        clause = self._check_clause(literals)
        if not clause:
            self._root_unsat = True
            return False
        self._engine.add_clause(clause)
        self._num_clauses += 1
        return True

    def solve(self, assumptions=()):
        self.num_solve_calls += 1
        self._model = None
        if self._root_unsat:
            return False
        assumptions = [int(lit) for lit in assumptions]
        interrupt = self.interrupt
        if interrupt is None:
            answer = self._engine.solve(assumptions=assumptions)
        else:
            # Slice the search so the cooperative interrupt contract
            # holds: budget a few conflicts, poll, repeat.
            answer = None
            while True:
                if interrupt():
                    return None
                self._engine.conf_budget(_PYSAT_SLICE_CONFLICTS)
                answer = self._engine.solve_limited(
                    assumptions=assumptions, expect_interrupt=False)
                if answer is not None:
                    break
        if answer:
            self._model = {abs(lit): lit > 0
                           for lit in (self._engine.get_model() or ())}
        return bool(answer)

    def stats(self):
        return {
            "backend": self.backend_name,
            "engine": f"pysat:{self._engine_name}",
            "vars": self._num_vars,
            "clauses": self._num_clauses,
            "solve_calls": self.num_solve_calls,
        }


class DimacsSubprocessBackend(_ClauseStoreMixin):
    """A user-supplied DIMACS binary behind the backend surface.

    Incrementality is emulated through a persistent *spool file*: each
    clause is serialized exactly once, appended to the spool when first
    seen, and the fixed-width ``p cnf`` header is rewritten in place
    before every ``solve`` (the engine subprocess itself restarts from
    scratch — that part is inherent to a stateless external binary, but
    the Python-side serialization cost drops from O(formula) to
    O(delta) per call, which is what matters in the clause-growing DIP
    loop where the portfolio mirrors thousands of learned clauses into
    this backend between solves).  Per-call assumptions are appended as
    unit clauses after the permanent body and truncated away once the
    run finishes, so they never pollute later solves.
    """

    backend_name = "native"

    #: Fixed digit widths for the in-place rewritten DIMACS header.
    _HEADER_FORMAT = "p cnf {vars:>10} {clauses:>12}\n"

    def __init__(self, argv_prefix, style="competition"):
        super().__init__()
        if not argv_prefix:
            raise SolverError("empty REPRO_SAT_BINARY")
        if style not in ("competition", "minisat"):
            raise SolverError(
                f"bad REPRO_SAT_STYLE {style!r} "
                "(expected 'competition' or 'minisat')")
        self._argv = tuple(argv_prefix)
        self._style = style
        self._clauses = []
        self._spool_dir = None
        self._spool_path = None
        self._spool_handle = None
        self._spooled = 0              # clauses already in the spool
        self._body_end = 0             # file offset after permanent body
        self._serialized_clauses = 0   # monotone: clause lines ever written

    def add_clause(self, literals):
        if self._root_unsat:
            return False
        clause = self._check_clause(literals)
        if not clause:
            self._root_unsat = True
            return False
        self._clauses.append(clause)
        return True

    # -- DIMACS plumbing ------------------------------------------------
    def _ensure_spool(self):
        """Open (once) the persistent spool file for this backend."""
        if self._spool_handle is None:
            self._spool_dir = tempfile.mkdtemp(prefix="repro-native-")
            weakref.finalize(self, shutil.rmtree, self._spool_dir,
                             ignore_errors=True)
            self._spool_path = os.path.join(self._spool_dir, "formula.cnf")
            self._spool_handle = open(self._spool_path, "w+",
                                      encoding="ascii")
            self._spool_handle.write(
                self._HEADER_FORMAT.format(vars=0, clauses=0))
            self._body_end = self._spool_handle.tell()
        return self._spool_handle

    def _sync_spool(self, assumptions):
        """Append new clauses + assumption units, rewrite the header.

        Returns the offset the caller must truncate back to afterwards
        (the end of the permanent clause body).
        """
        handle = self._ensure_spool()
        handle.seek(self._body_end)
        for clause in self._clauses[self._spooled:]:
            handle.write(" ".join(map(str, clause)) + " 0\n")
        self._serialized_clauses += len(self._clauses) - self._spooled
        self._spooled = len(self._clauses)
        self._body_end = handle.tell()
        for lit in assumptions:
            handle.write(f"{int(lit)} 0\n")
        handle.seek(0)
        handle.write(self._HEADER_FORMAT.format(
            vars=self._num_vars,
            clauses=len(self._clauses) + len(assumptions)))
        handle.flush()
        return self._body_end

    def _run(self, argv):
        """Run the engine, polling the interrupt callback.

        Returns the completed process, or ``None`` when interrupted
        (the engine is killed first).
        """
        interrupt = self.interrupt
        try:
            proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                                    stderr=subprocess.DEVNULL, text=True)
        except OSError as exc:
            raise SolverError(
                f"native engine {argv[0]!r} failed to start: {exc}")
        while True:
            if proc.poll() is not None:
                break
            if interrupt is not None and interrupt():
                proc.kill()
                proc.wait()
                return None
            time.sleep(_SUBPROCESS_POLL_SECONDS)
        return proc

    @staticmethod
    def _parse_answer(text):
        """Parse SAT-competition style output: s-line plus v-lines."""
        answer = None
        model = {}
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("s "):
                token = line[2:].strip().upper()
                if token.startswith("UNSAT"):
                    answer = False
                elif token.startswith("SAT"):
                    answer = True
            elif line.startswith("v "):
                for tok in line[2:].split():
                    lit = int(tok)
                    if lit:
                        model[abs(lit)] = lit > 0
            elif line in ("SATISFIABLE", "UNSATISFIABLE"):
                answer = not line.startswith("UN")
        return answer, model

    def solve(self, assumptions=()):
        self.num_solve_calls += 1
        self._model = None
        if self._root_unsat:
            return False
        body_end = self._sync_spool([int(lit) for lit in assumptions])
        try:
            argv = list(self._argv) + [self._spool_path]
            out_path = None
            if self._style == "minisat":
                out_path = os.path.join(self._spool_dir, "result.txt")
                if os.path.exists(out_path):
                    os.unlink(out_path)  # never trust a stale verdict
                argv.append(out_path)
            proc = self._run(argv)
            if proc is None:
                return None
            text = proc.stdout.read() if proc.stdout else ""
            if out_path and os.path.exists(out_path):
                with open(out_path, "r", encoding="ascii") as handle:
                    # MiniSat result files: SAT\n<model> / UNSAT
                    body = handle.read().split()
                if body:
                    verdict = body[0].upper()
                    text += ("\ns UNSATISFIABLE" if verdict == "UNSAT"
                             else "\ns SATISFIABLE\nv "
                             + " ".join(body[1:]))
        finally:
            # Drop this call's assumption units; the permanent clause
            # body stays spooled for the next (incremental) solve.
            self._spool_handle.seek(body_end)
            self._spool_handle.truncate()
        answer, model = self._parse_answer(text)
        if answer is None:
            # Fall back on the SAT-competition exit-code convention.
            if proc.returncode == 10:
                answer = True
            elif proc.returncode == 20:
                answer = False
            else:
                raise SolverError(
                    f"native engine {self._argv[0]!r} produced no "
                    f"verdict (exit code {proc.returncode})")
        if answer and not model:
            raise SolverError(
                f"native engine {self._argv[0]!r} reported SAT without "
                "a model (v-lines); the attacks need model extraction "
                "-- use an engine/flag that prints the assignment")
        if answer:
            self._model = model
        return answer

    def stats(self):
        return {
            "backend": self.backend_name,
            "engine": "dimacs:" + " ".join(self._argv),
            "style": self._style,
            "vars": self._num_vars,
            "clauses": len(self._clauses),
            "solve_calls": self.num_solve_calls,
            # Incremental-mirroring proof: each clause is serialized to
            # the spool once, not once per solve.
            "serialized_clauses": self._serialized_clauses,
        }


class NativeUnavailableBackend:
    """Placeholder that keeps ``native`` listed when no engine exists.

    Implements the whole backend surface so registry introspection
    (``implemented_by``, ``stats``) works, but every solving entry
    point raises a :class:`SolverError` that says how to get a real
    engine.
    """

    backend_name = "native"

    def __init__(self, reason):
        self._reason = reason
        self.interrupt = None

    def _unavailable(self):
        raise SolverError(
            f"native backend unavailable ({self._reason}); install "
            "python-sat or point REPRO_SAT_BINARY at a DIMACS solver "
            "(e.g. kissat); see README 'Attack engine'")

    def new_var(self):
        self._unavailable()

    def ensure_vars(self, up_to):
        self._unavailable()

    @property
    def num_vars(self):
        return 0

    def add_clause(self, literals):
        self._unavailable()

    def add_cnf(self, cnf):
        self._unavailable()

    def solve(self, assumptions=()):
        self._unavailable()

    def model_value(self, var):
        self._unavailable()

    def model(self):
        self._unavailable()

    def stats(self):
        return {
            "backend": self.backend_name,
            "engine": None,
            "available": False,
            "vars": 0,
            "clauses": 0,
            "solve_calls": 0,
        }


def in_tree_engine_argv():
    """argv prefix for the bundled DIMACS engine (tests, smoke runs)."""
    return (sys.executable, "-m", "repro.sat.dimacs_engine")
