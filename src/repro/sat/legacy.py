"""The original object-graph CDCL solver, kept as a baseline.

This is the pre-arena implementation of :mod:`repro.sat.solver`, frozen
here verbatim (clauses as Python objects, watches as dicts of clause
lists).  It exists for two reasons:

* ``benchmarks/bench_solver.py`` measures the arena engine *against*
  this implementation, so the speedup claim in ``BENCH_solver.json`` is
  a real A/B number rather than folklore;
* the differential test grid runs it next to the arena solver and the
  DPLL oracle, so a behavioural regression in the rewrite shows up as a
  three-way disagreement.

It is registered in the backend registry as ``legacy-cdcl`` and shares
the exact ``Solver`` surface (same constructor knobs, ``stats()`` shape,
``interrupt`` protocol).  Do not optimise this file — its job is to stay
what the seed solver was.

Literals are non-zero signed ints over variables ``1..n`` (DIMACS style).
"""

from __future__ import annotations

import heapq

from repro.errors import SolverError

_TRUE, _FALSE, _UNASSIGNED = 1, 0, -1

#: How many conflicts pass between interrupt-callback polls.
_INTERRUPT_GRANULARITY = 64


class _Interrupted(Exception):
    """Internal signal: the interrupt callback asked the search to stop."""


class _Clause:
    """Clause with watch-order literals; positions 0 and 1 are watched."""

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits, learnt=False):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class LegacySolver:
    """Incremental CDCL solver (seed implementation, object-graph core).

    The keyword arguments are the tunable search heuristics exposed to
    the portfolio layer; the defaults reproduce the original fixed
    behaviour exactly.
    """

    def __init__(self, var_decay=0.95, clause_decay=0.999, restart_base=64,
                 phase_default=False, learnt_cap=4000):
        if not 0.0 < var_decay <= 1.0 or not 0.0 < clause_decay <= 1.0:
            raise SolverError("activity decays must be in (0, 1]")
        if restart_base < 1:
            raise SolverError("restart_base must be >= 1")
        self._num_vars = 0
        self._clauses = []        # problem clauses
        self._learnts = []        # learnt clauses
        self._watches = {}        # literal -> list of clauses watching it
        self._bin_watches = {}    # literal -> list of (clause, other_lit)
        self._assign = [ _UNASSIGNED ]  # var-indexed (index 0 unused)
        self._level = [0]
        self._reason = [None]
        self._phase = [bool(phase_default)]
        self._activity = [0.0]
        self._order = []          # lazy max-heap of (-activity, var)
        self._trail = []
        self._trail_lim = []
        self._qhead = 0
        self._unsat = False
        self._model = None
        self._var_inc = 1.0
        self._var_decay = 1.0 / var_decay
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / clause_decay
        self._restart_base = int(restart_base)
        self._phase_default = bool(phase_default)
        self._learnt_cap = int(learnt_cap)
        #: Optional zero-argument callable polled during search; when it
        #: returns true, ``solve`` stops and returns ``None`` (unknown).
        self.interrupt = None
        # statistics
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        self.num_solve_calls = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self):
        """Allocate a fresh variable and return it."""
        self._num_vars += 1
        var = self._num_vars
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(self._phase_default)
        self._activity.append(0.0)
        heapq.heappush(self._order, (0.0, var))
        return var

    def ensure_vars(self, up_to):
        """Allocate variables until ``up_to`` exists."""
        while self._num_vars < up_to:
            self.new_var()

    @property
    def num_vars(self):
        return self._num_vars

    def add_clause(self, literals):
        """Add a problem clause; returns False if the solver became UNSAT."""
        if self._unsat:
            return False
        self._cancel_until(0)
        seen = set()
        clause = []
        for lit in literals:
            lit = int(lit)
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"bad literal {lit} (allocate variables first)")
            if -lit in seen:
                return True  # tautology: trivially satisfied
            if lit in seen:
                continue
            value = self._value(lit)
            if value == _TRUE and self._level[abs(lit)] == 0:
                return True  # already satisfied at root
            if value == _FALSE and self._level[abs(lit)] == 0:
                continue  # literal dead at root
            seen.add(lit)
            clause.append(lit)

        if not clause:
            self._unsat = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        stored = _Clause(clause)
        self._clauses.append(stored)
        self._watch(stored)
        return True

    def add_cnf(self, cnf):
        """Load a :class:`repro.cnf.formula.Cnf`."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions=()):
        """True iff satisfiable under ``assumptions`` (list of literals).

        Returns ``None`` — *unknown*, not falsy-UNSAT — when the
        :attr:`interrupt` callback fired mid-search; the solver keeps its
        clause store (and learnt clauses) and may be solved again.
        """
        self.num_solve_calls += 1
        if self._unsat:
            return False
        self._cancel_until(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        assumptions = [int(lit) for lit in assumptions]
        for lit in assumptions:
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"bad assumption literal {lit}")

        restart = 0
        while True:
            if self.interrupt is not None and self.interrupt():
                self._cancel_until(0)
                self._model = None  # a prior solve's model must not leak
                return None
            threshold = self._restart_base * _luby(restart)
            try:
                status = self._search(threshold, assumptions)
            except _Interrupted:
                self._cancel_until(0)
                self._model = None
                return None
            restart += 1
            if status is None:
                self.num_restarts += 1
                continue
            if status:
                self._model = list(self._assign)
                self._cancel_until(0)
                return True
            self._cancel_until(0)
            return False

    def model_value(self, var):
        """Truth value of ``var`` in the last satisfying model."""
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        value = self._model[var]
        if value == _UNASSIGNED:
            # Variable was never constrained; default polarity.
            return False
        return value == _TRUE

    def model(self):
        """Whole model as a dict var -> bool."""
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        return {
            var: self.model_value(var) for var in range(1, self._num_vars + 1)
        }

    def stats(self):
        return {
            # Uniform across backends: CdclConfig.build() stamps the
            # registered name; a bare LegacySolver() is the legacy config.
            "backend": getattr(self, "backend_name", "legacy-cdcl"),
            "vars": self._num_vars,
            "clauses": len(self._clauses),
            "learnts": len(self._learnts),
            "conflicts": self.num_conflicts,
            "decisions": self.num_decisions,
            "propagations": self.num_propagations,
            "restarts": self.num_restarts,
            "solve_calls": self.num_solve_calls,
        }

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _search(self, conflict_budget, assumptions):
        """Run until SAT (True), UNSAT (False), or restart (None)."""
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_here += 1
                if (self.interrupt is not None
                        and self.num_conflicts % _INTERRUPT_GRANULARITY == 0
                        and self.interrupt()):
                    raise _Interrupted
                if self._decision_level() == 0:
                    self._unsat = True
                    return False
                back_level, learnt = self._analyze(conflict)
                self._cancel_until(back_level)
                self._record(learnt)
                self._decay_activities()
                continue

            if conflicts_here >= conflict_budget:
                self._cancel_until(0)
                return None  # restart
            if (len(self._learnts) >= self._learnt_cap + len(self._clauses) // 2
                    and self._decision_level() >= len(assumptions)):
                self._reduce_learnts()

            # Plant pending assumptions, one decision level each.
            next_lit = None
            while self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value == _TRUE:
                    self._new_level()  # dummy level keeps alignment
                elif value == _FALSE:
                    return False  # assumptions unsatisfiable
                else:
                    next_lit = lit
                    break

            if next_lit is None:
                next_lit = self._pick_branch()
                if next_lit is None:
                    return True  # complete assignment
                self.num_decisions += 1
            self._new_level()
            self._enqueue(next_lit, None)

    def _propagate(self):
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        bin_watches = self._bin_watches
        assign = self._assign
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            false_lit = -lit

            # Binary clauses: no watch migration, just check the partner.
            for clause, other in bin_watches.get(false_lit, ()):
                other_var = other if other > 0 else -other
                other_assign = assign[other_var]
                if other_assign == _UNASSIGNED:
                    self._enqueue(other, clause)
                elif (other_assign == _TRUE) != (other > 0):
                    self._qhead = len(self._trail)
                    return clause

            watchers = watches.get(false_lit)
            if not watchers:
                continue
            keep_index = 0
            i = 0
            count = len(watchers)
            while i < count:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                first_var = first if first > 0 else -first
                first_assign = assign[first_var]
                if first_assign != _UNASSIGNED and \
                        (first_assign == _TRUE) == (first > 0):
                    watchers[keep_index] = clause
                    keep_index += 1
                    continue
                moved = False
                for k in range(2, len(lits)):
                    other = lits[k]
                    other_var = other if other > 0 else -other
                    other_assign = assign[other_var]
                    if other_assign == _UNASSIGNED or \
                            (other_assign == _TRUE) == (other > 0):
                        lits[1], lits[k] = lits[k], lits[1]
                        watches.setdefault(lits[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Unit or conflict.
                watchers[keep_index] = clause
                keep_index += 1
                if first_assign != _UNASSIGNED:
                    # conflict: keep remaining watchers and bail out
                    while i < count:
                        watchers[keep_index] = watchers[i]
                        keep_index += 1
                        i += 1
                    del watchers[keep_index:]
                    self._qhead = len(self._trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[keep_index:]
        return None

    def _analyze(self, conflict):
        """First-UIP learning; returns (backtrack_level, learnt_lits)."""
        seen = bytearray(self._num_vars + 1)
        learnt = []
        path_count = 0
        lit = None
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            if conflict.learnt:
                self._bump_clause(conflict)
            for q in conflict.lits:
                if q == lit:
                    continue  # the literal this clause propagated
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            conflict = self._reason[var]
            seen[var] = 0
            index -= 1
            path_count -= 1
            if path_count == 0:
                break

        learnt.insert(0, -lit)

        # Self-subsumption minimisation (conservative, one pass).
        minimized = [learnt[0]]
        for q in learnt[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                minimized.append(q)
                continue
            redundant = True
            for other in reason.lits:
                if other == -q:
                    continue  # the literal the reason clause propagated
                var = abs(other)
                if not seen[var] and self._level[var] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        learnt = minimized

        if len(learnt) == 1:
            return 0, learnt
        # Move the highest-level non-asserting literal into slot 1.
        best = 1
        for k in range(2, len(learnt)):
            if self._level[abs(learnt[k])] > self._level[abs(learnt[best])]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return self._level[abs(learnt[1])], learnt

    def _record(self, learnt_lits):
        if len(learnt_lits) == 1:
            self._enqueue(learnt_lits[0], None)
            return
        clause = _Clause(learnt_lits, learnt=True)
        clause.activity = self._cla_inc
        self._learnts.append(clause)
        self._watch(clause)
        self._enqueue(learnt_lits[0], clause)

    def _reduce_learnts(self):
        """Drop the less active half of unlocked learnt clauses."""
        locked = {id(self._reason[abs(self._trail[k])])
                  for k in range(len(self._trail))
                  if self._reason[abs(self._trail[k])] is not None}
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        kept, dropped = [], set()
        for position, clause in enumerate(self._learnts):
            if position >= keep_from or id(clause) in locked or len(clause.lits) <= 2:
                kept.append(clause)
            else:
                dropped.add(id(clause))
        if not dropped:
            return
        self._learnts = kept
        for watchers in self._watches.values():
            watchers[:] = [c for c in watchers if id(c) not in dropped]

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------
    def _decision_level(self):
        return len(self._trail_lim)

    def _new_level(self):
        self._trail_lim.append(len(self._trail))

    def _value(self, lit):
        value = self._assign[lit if lit > 0 else -lit]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return _TRUE if (value == _TRUE) == (lit > 0) else _FALSE

    def _enqueue(self, lit, reason):
        var = abs(lit)
        current = self._assign[var]
        if current != _UNASSIGNED:
            return (current == _TRUE) == (lit > 0)
        self._assign[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _cancel_until(self, level):
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        order = self._order
        for k in range(len(self._trail) - 1, boundary - 1, -1):
            lit = self._trail[k]
            var = abs(lit)
            self._phase[var] = lit > 0
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(order, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch(self):
        order = self._order
        assign = self._assign
        while order:
            _, var = heapq.heappop(order)
            if assign[var] == _UNASSIGNED:
                return var if self._phase[var] else -var
        return None

    def _watch(self, clause):
        lits = clause.lits
        if len(lits) == 2:
            self._bin_watches.setdefault(lits[0], []).append((clause, lits[1]))
            self._bin_watches.setdefault(lits[1], []).append((clause, lits[0]))
            return
        self._watches.setdefault(lits[0], []).append(clause)
        self._watches.setdefault(lits[1], []).append(clause)

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_var_activity()
        if self._assign[var] == _UNASSIGNED:
            heapq.heappush(self._order, (-self._activity[var], var))

    def _rescale_var_activity(self):
        for var in range(1, self._num_vars + 1):
            self._activity[var] *= 1e-100
        self._var_inc *= 1e-100
        self._order = [(-self._activity[var], var)
                       for var in range(1, self._num_vars + 1)
                       if self._assign[var] == _UNASSIGNED]
        heapq.heapify(self._order)

    def _bump_clause(self, clause):
        clause.activity += self._cla_inc
        if clause.activity > 1e100:
            for learnt in self._learnts:
                learnt.activity *= 1e-100
            self._cla_inc *= 1e-100

    def _decay_activities(self):
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay


def _luby(index):
    """Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq
