"""CDCL SAT solver with a flat-arena clause store.

A from-scratch conflict-driven clause-learning solver in the MiniSat
lineage, written for the SAT-based attacks in this reproduction (no SAT
package is available offline). Features:

* two-watched-literal propagation with blocker literals,
* EVSIDS variable activities with a lazy max-heap,
* first-UIP conflict analysis with self-subsumption minimisation,
* phase saving,
* Luby restarts,
* learnt-clause database reduction with free-list slot recycling,
* incremental use: clauses may be added between ``solve`` calls, and
  ``solve(assumptions=...)`` checks satisfiability under temporary
  literal assumptions (the workhorse of the DIP loop),
* tunable search heuristics (restart pacing, activity decays, default
  phase) — the knobs the portfolio layer races against each other,
* cooperative interruption: set :attr:`Solver.interrupt` to a cheap
  callable and ``solve`` returns ``None`` (unknown) soon after it turns
  true, with the solver state intact for the next call. The callback is
  polled on conflicts, decisions, *and* propagations, so even a
  conflict-free solve notices cancellation promptly.

Internally the solver is arena-ized: clauses live in one flat Python
int list (``[size, lit0, lit1, ...]`` records addressed by integer
``cref``), watch lists are per-literal flat ``[blocker, cref]`` pair
lists indexed by encoded literal, and assignments are a per-literal
truth array. Encoded literals are ``var << 1 | sign`` so negation is
``enc ^ 1`` and every hot-loop lookup is a list index instead of an
attribute or dict access. Dropped learnt clauses park their arena slot
on a per-size free list and are recycled by later learnts.

The public API speaks DIMACS-style literals: non-zero signed ints over
variables ``1..n``. The pre-arena implementation is preserved verbatim
in :mod:`repro.sat.legacy` as a benchmark and differential baseline.
"""

from __future__ import annotations

import heapq

from repro.errors import SolverError

_TRUE, _FALSE, _UNASSIGNED = 1, 0, -1

#: How many conflicts pass between interrupt-callback polls.
_INTERRUPT_GRANULARITY = 64
#: How many decisions pass between interrupt-callback polls.
_INTERRUPT_DECISIONS = 64
#: How many propagations pass between interrupt-callback polls. A
#: propagation-heavy solve with few conflicts (long implication chains)
#: previously ignored cancellation for unbounded time; this bounds the
#: poll latency by trail work, not just by conflicts.
_INTERRUPT_PROPAGATIONS = 1024

#: Sentinel clause reference meaning "no clause" (decision / no conflict).
_NO_CREF = -1


class _Interrupted(Exception):
    """Internal signal: the interrupt callback asked the search to stop."""


def _encode(lit):
    """Signed DIMACS literal -> encoded literal (``var << 1 | sign``)."""
    return (lit << 1) if lit > 0 else ((-lit) << 1) | 1


class Solver:
    """Incremental CDCL solver over a flat clause arena.

    The keyword arguments are the tunable search heuristics exposed to
    the portfolio layer; the defaults reproduce the original fixed
    behaviour exactly.

    ``var_decay`` / ``clause_decay``
        EVSIDS decay factors in ``(0, 1]`` (activities are bumped by a
        increment that grows by ``1/decay`` per conflict).
    ``restart_base``
        Conflict budget multiplier of the Luby restart sequence.
    ``phase_default``
        Initial saved phase of fresh variables (phase saving overwrites
        it as the search runs).
    ``learnt_cap``
        Base size of the learnt-clause database before reduction kicks
        in (the cap grows with the problem clause count).
    """

    def __init__(self, var_decay=0.95, clause_decay=0.999, restart_base=64,
                 phase_default=False, learnt_cap=4000):
        if not 0.0 < var_decay <= 1.0 or not 0.0 < clause_decay <= 1.0:
            raise SolverError("activity decays must be in (0, 1]")
        if restart_base < 1:
            raise SolverError("restart_base must be >= 1")
        self._num_vars = 0
        # Clause arena: [size, lit0, lit1, ...] records; cref = record index.
        self._arena = []
        self._free = {}           # size -> [cref] recycled learnt slots
        self._clauses = []        # problem clause crefs
        self._learnts = []        # learnt clause crefs
        self._cla_act = {}        # learnt cref -> activity
        # Indexed by encoded literal (slots 0 and 1 unused).
        self._watches = [[], []]  # enc literal -> list of (blocker, cref)
        self._bin = [[], []]      # enc literal -> list of (implied, cref)
        self._val = [_UNASSIGNED, _UNASSIGNED]  # enc literal -> truth
        # Indexed by variable (index 0 unused).
        self._level = [0]
        self._reason = [_NO_CREF]
        self._phase = [bool(phase_default)]
        self._activity = [0.0]
        self._order = []          # lazy max-heap of (-activity, var)
        self._trail = []          # encoded literals, assignment order
        self._trail_lim = []
        self._qhead = 0
        self._unsat = False
        self._model = None
        self._var_inc = 1.0
        self._var_decay = 1.0 / var_decay
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / clause_decay
        self._restart_base = int(restart_base)
        self._phase_default = bool(phase_default)
        self._learnt_cap = int(learnt_cap)
        self._max_learnts = 0.0   # adaptive DB budget, set per solve call
        self._searching = False
        self._prop_countdown = _INTERRUPT_PROPAGATIONS
        #: Optional zero-argument callable polled during search; when it
        #: returns true, ``solve`` stops and returns ``None`` (unknown).
        self.interrupt = None
        # statistics
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        self.num_solve_calls = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self):
        """Allocate a fresh variable and return it."""
        self._num_vars += 1
        var = self._num_vars
        self._val.append(_UNASSIGNED)
        self._val.append(_UNASSIGNED)
        self._watches.append([])
        self._watches.append([])
        self._bin.append([])
        self._bin.append([])
        self._level.append(0)
        self._reason.append(_NO_CREF)
        self._phase.append(self._phase_default)
        self._activity.append(0.0)
        heapq.heappush(self._order, (0.0, var))
        return var

    def ensure_vars(self, up_to):
        """Allocate variables until ``up_to`` exists."""
        while self._num_vars < up_to:
            self.new_var()

    @property
    def num_vars(self):
        return self._num_vars

    def add_clause(self, literals):
        """Add a problem clause; returns False if the solver became UNSAT."""
        if self._unsat:
            return False
        self._cancel_until(0)
        val = self._val
        level = self._level
        seen = set()
        clause = []
        for lit in literals:
            lit = int(lit)
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"bad literal {lit} (allocate variables first)")
            enc = (lit << 1) if lit > 0 else ((-lit) << 1) | 1
            if enc ^ 1 in seen:
                return True  # tautology: trivially satisfied
            if enc in seen:
                continue
            value = val[enc]
            if value == _TRUE and level[enc >> 1] == 0:
                return True  # already satisfied at root
            if value == _FALSE and level[enc >> 1] == 0:
                continue  # literal dead at root
            seen.add(enc)
            clause.append(enc)

        if not clause:
            self._unsat = True
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], _NO_CREF):
                self._unsat = True
                return False
            if self._propagate() != _NO_CREF:
                self._unsat = True
                return False
            return True
        cref = self._alloc(clause)
        self._clauses.append(cref)
        self._attach(cref)
        return True

    def add_cnf(self, cnf):
        """Load a :class:`repro.cnf.formula.Cnf`."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions=()):
        """True iff satisfiable under ``assumptions`` (list of literals).

        Returns ``None`` — *unknown*, not falsy-UNSAT — when the
        :attr:`interrupt` callback fired mid-search; the solver keeps its
        clause store (and learnt clauses) and may be solved again.
        """
        self.num_solve_calls += 1
        if self._unsat:
            return False
        self._cancel_until(0)
        if self._propagate() != _NO_CREF:
            self._unsat = True
            return False
        enc_assumptions = []
        for lit in assumptions:
            lit = int(lit)
            if lit == 0 or abs(lit) > self._num_vars:
                raise SolverError(f"bad assumption literal {lit}")
            enc_assumptions.append(
                (lit << 1) if lit > 0 else ((-lit) << 1) | 1)

        self._searching = self.interrupt is not None
        self._prop_countdown = _INTERRUPT_PROPAGATIONS
        # MiniSat-style adaptive learnt-DB budget: start at a third of
        # the problem clauses, grow 10% per restart. ``learnt_cap`` (the
        # seed trigger) stays as the hard ceiling, so reduction is never
        # *later* than it was, only earlier — keeping watch lists short.
        self._max_learnts = max(len(self._clauses) / 3.0, 100.0)
        try:
            restart = 0
            while True:
                if self.interrupt is not None and self.interrupt():
                    self._cancel_until(0)
                    self._model = None  # a prior solve's model must not leak
                    return None
                threshold = self._restart_base * _luby(restart)
                try:
                    status = self._search(threshold, enc_assumptions)
                except _Interrupted:
                    self._cancel_until(0)
                    self._model = None
                    return None
                restart += 1
                if status is None:
                    self.num_restarts += 1
                    self._max_learnts *= 1.1
                    continue
                if status:
                    val = self._val
                    self._model = [_UNASSIGNED] + [
                        val[var << 1] for var in range(1, self._num_vars + 1)
                    ]
                    self._cancel_until(0)
                    return True
                self._cancel_until(0)
                return False
        finally:
            self._searching = False

    def model_value(self, var):
        """Truth value of ``var`` in the last satisfying model."""
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        value = self._model[var]
        if value == _UNASSIGNED:
            # Variable was never constrained; default polarity.
            return False
        return value == _TRUE

    def model(self):
        """Whole model as a dict var -> bool."""
        if self._model is None:
            raise SolverError("no model available (last solve was not SAT)")
        return {
            var: self.model_value(var) for var in range(1, self._num_vars + 1)
        }

    def stats(self):
        return {
            # Uniform across backends: CdclConfig.build() stamps the
            # registered name; a bare Solver() is the reference config.
            "backend": getattr(self, "backend_name", "cdcl"),
            "vars": self._num_vars,
            "clauses": len(self._clauses),
            "learnts": len(self._learnts),
            "conflicts": self.num_conflicts,
            "decisions": self.num_decisions,
            "propagations": self.num_propagations,
            "restarts": self.num_restarts,
            "solve_calls": self.num_solve_calls,
        }

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _search(self, conflict_budget, assumptions):
        """Run until SAT (True), UNSAT (False), or restart (None)."""
        conflicts_here = 0
        interrupt = self.interrupt
        val = self._val
        trail_lim = self._trail_lim
        while True:
            conflict = self._propagate()
            if conflict != _NO_CREF:
                self.num_conflicts += 1
                conflicts_here += 1
                if (interrupt is not None
                        and self.num_conflicts % _INTERRUPT_GRANULARITY == 0
                        and interrupt()):
                    raise _Interrupted
                if not trail_lim:
                    self._unsat = True
                    return False
                back_level, learnt = self._analyze(conflict)
                self._cancel_until(back_level)
                self._record(learnt)
                self._decay_activities()
                continue

            if conflicts_here >= conflict_budget:
                self._cancel_until(0)
                return None  # restart
            limit = self._max_learnts
            cap = self._learnt_cap + len(self._clauses) // 2
            if limit > cap:
                limit = cap
            if (len(self._learnts) >= limit
                    and len(trail_lim) >= len(assumptions)):
                self._reduce_learnts()

            # Plant pending assumptions, one decision level each.
            next_enc = _NO_CREF
            while len(trail_lim) < len(assumptions):
                enc = assumptions[len(trail_lim)]
                value = val[enc]
                if value == _TRUE:
                    trail_lim.append(len(self._trail))  # dummy level
                elif value == _FALSE:
                    return False  # assumptions unsatisfiable
                else:
                    next_enc = enc
                    break

            if next_enc == _NO_CREF:
                next_enc = self._pick_branch()
                if next_enc == _NO_CREF:
                    return True  # complete assignment
                self.num_decisions += 1
                if (interrupt is not None
                        and self.num_decisions % _INTERRUPT_DECISIONS == 0
                        and interrupt()):
                    raise _Interrupted
            trail_lim.append(len(self._trail))
            self._enqueue(next_enc, _NO_CREF)

    def _propagate(self):
        """Unit propagation; returns a conflicting cref or ``_NO_CREF``."""
        arena = self._arena
        watches = self._watches
        bins = self._bin
        val = self._val
        trail = self._trail
        level = self._level
        reason = self._reason
        qhead = self._qhead
        dl = len(self._trail_lim)
        props = 0
        interrupt = self.interrupt if self._searching else None
        countdown = self._prop_countdown
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            props += 1
            if interrupt is not None:
                countdown -= 1
                if countdown <= 0:
                    countdown = _INTERRUPT_PROPAGATIONS
                    if interrupt():
                        self._qhead = qhead
                        self.num_propagations += props
                        self._prop_countdown = countdown
                        raise _Interrupted
            false_enc = lit ^ 1

            # Binary clauses: no watch migration, just check the partner.
            for pair in bins[false_enc]:
                other = pair[0]
                ov = val[other]
                if ov == _UNASSIGNED:
                    val[other] = _TRUE
                    val[other ^ 1] = _FALSE
                    var = other >> 1
                    level[var] = dl
                    reason[var] = pair[1]
                    trail.append(other)
                elif ov == _FALSE:
                    self._qhead = len(trail)
                    self.num_propagations += props
                    self._prop_countdown = countdown
                    return pair[1]

            # Long clauses: (blocker, cref) pairs. ``out`` is a lazily
            # created replacement list — it stays None (and the loop
            # stays read-mostly) until a watch actually migrates away.
            w = watches[false_enc]
            out = None
            idx = -1
            for pair in w:
                idx += 1
                if val[pair[0]] == _TRUE:
                    if out is not None:
                        out.append(pair)
                    continue
                cref = pair[1]
                if arena[cref + 1] == false_enc:
                    arena[cref + 1] = arena[cref + 2]
                    arena[cref + 2] = false_enc
                first = arena[cref + 1]
                fval = val[first]
                if fval == _TRUE:
                    # Keep, refreshing the blocker to the satisfied lit.
                    if out is None:
                        w[idx] = (first, cref)
                    else:
                        out.append((first, cref))
                    continue
                for k in range(cref + 3, cref + 1 + arena[cref]):
                    other = arena[k]
                    if val[other] != _FALSE:
                        # Move the watch to ``other``.
                        arena[cref + 2] = other
                        arena[k] = false_enc
                        watches[other].append((first, cref))
                        if out is None:
                            out = w[:idx]
                        break
                else:
                    # Unit or conflict.
                    if out is None:
                        w[idx] = (first, cref)
                    else:
                        out.append((first, cref))
                    if fval == _FALSE:
                        # conflict: keep remaining watchers and bail out
                        if out is not None:
                            out.extend(w[idx + 1:])
                            watches[false_enc] = out
                        self._qhead = len(trail)
                        self.num_propagations += props
                        self._prop_countdown = countdown
                        return cref
                    val[first] = _TRUE
                    val[first ^ 1] = _FALSE
                    var = first >> 1
                    level[var] = dl
                    reason[var] = cref
                    trail.append(first)
            if out is not None:
                watches[false_enc] = out
        self._qhead = qhead
        self.num_propagations += props
        self._prop_countdown = countdown
        return _NO_CREF

    def _analyze(self, conflict):
        """First-UIP learning; returns (backtrack_level, learnt_lits)."""
        arena = self._arena
        trail = self._trail
        level = self._level
        reason = self._reason
        cla_act = self._cla_act
        activity = self._activity
        val = self._val
        order = self._order
        var_inc = self._var_inc
        seen = bytearray(self._num_vars + 1)
        learnt = []
        path_count = 0
        lit = _NO_CREF  # encoded literal the current clause propagated
        index = len(trail) - 1
        current_level = len(self._trail_lim)

        while True:
            if conflict in cla_act:
                self._bump_clause(conflict)
            for k in range(conflict + 1, conflict + 1 + arena[conflict]):
                q = arena[k]
                if q == lit:
                    continue  # the literal this clause propagated
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    # Inlined _bump_var (hot path).
                    act = activity[var] + var_inc
                    activity[var] = act
                    if act > 1e100:
                        self._rescale_var_activity()
                        var_inc = self._var_inc
                        order = self._order
                        act = activity[var]
                    if val[var << 1] == _UNASSIGNED:
                        heapq.heappush(order, (-act, var))
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            lit = trail[index]
            var = lit >> 1
            conflict = reason[var]
            seen[var] = 0
            index -= 1
            path_count -= 1
            if path_count == 0:
                break

        learnt.insert(0, lit ^ 1)

        # Self-subsumption minimisation (conservative, one pass).
        minimized = [learnt[0]]
        for q in learnt[1:]:
            cref = reason[q >> 1]
            if cref == _NO_CREF:
                minimized.append(q)
                continue
            redundant = True
            for k in range(cref + 1, cref + 1 + arena[cref]):
                other = arena[k]
                if other == q ^ 1:
                    continue  # the literal the reason clause propagated
                var = other >> 1
                if not seen[var] and level[var] > 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
        learnt = minimized

        if len(learnt) == 1:
            return 0, learnt
        # Move the highest-level non-asserting literal into slot 1.
        best = 1
        for k in range(2, len(learnt)):
            if level[learnt[k] >> 1] > level[learnt[best] >> 1]:
                best = k
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return level[learnt[1] >> 1], learnt

    def _record(self, learnt_lits):
        if len(learnt_lits) == 1:
            self._enqueue(learnt_lits[0], _NO_CREF)
            return
        cref = self._alloc(learnt_lits)
        self._cla_act[cref] = self._cla_inc
        self._learnts.append(cref)
        self._attach(cref)
        self._enqueue(learnt_lits[0], cref)

    def _reduce_learnts(self):
        """Drop the less active half of unlocked learnt clauses."""
        arena = self._arena
        reason = self._reason
        cla_act = self._cla_act
        locked = {reason[enc >> 1] for enc in self._trail}
        locked.discard(_NO_CREF)
        self._learnts.sort(key=cla_act.__getitem__)
        keep_from = len(self._learnts) // 2
        kept, dropped = [], set()
        for position, cref in enumerate(self._learnts):
            if position >= keep_from or cref in locked or arena[cref] <= 2:
                kept.append(cref)
            else:
                dropped.add(cref)
        if not dropped:
            return
        self._learnts = kept
        for watchers in self._watches:
            if watchers:
                watchers[:] = [pair for pair in watchers
                               if pair[1] not in dropped]
        free = self._free
        for cref in dropped:
            del cla_act[cref]
            free.setdefault(arena[cref], []).append(cref)

    # ------------------------------------------------------------------
    # Arena management
    # ------------------------------------------------------------------
    def _alloc(self, enc_lits):
        """Store a clause record; reuse a recycled slot of the same size."""
        size = len(enc_lits)
        arena = self._arena
        bucket = self._free.get(size)
        if bucket:
            cref = bucket.pop()
            arena[cref + 1:cref + 1 + size] = enc_lits
        else:
            cref = len(arena)
            arena.append(size)
            arena.extend(enc_lits)
        return cref

    def _attach(self, cref):
        """Watch the first two literals of a stored clause.

        Binary clauses go on dedicated implication lists: their watches
        never migrate, so propagation over them is a straight partner
        check with no arena access. (``_reduce_learnts`` never drops
        clauses of size <= 2, so these lists never need purging.)
        """
        arena = self._arena
        first = arena[cref + 1]
        second = arena[cref + 2]
        if arena[cref] == 2:
            self._bin[first].append((second, cref))
            self._bin[second].append((first, cref))
            return
        self._watches[first].append((second, cref))
        self._watches[second].append((first, cref))

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------
    def _decision_level(self):
        return len(self._trail_lim)

    def _new_level(self):
        self._trail_lim.append(len(self._trail))

    def _value(self, lit):
        """Truth of a signed DIMACS literal under the current assignment."""
        return self._val[(lit << 1) if lit > 0 else ((-lit) << 1) | 1]

    def _enqueue(self, enc, reason_cref):
        val = self._val
        current = val[enc]
        if current != _UNASSIGNED:
            return current == _TRUE
        val[enc] = _TRUE
        val[enc ^ 1] = _FALSE
        var = enc >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_cref
        self._trail.append(enc)
        return True

    def _cancel_until(self, level):
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        trail = self._trail
        val = self._val
        phase = self._phase
        reason = self._reason
        activity = self._activity
        order = self._order
        for k in range(len(trail) - 1, boundary - 1, -1):
            enc = trail[k]
            var = enc >> 1
            phase[var] = not enc & 1
            val[enc] = _UNASSIGNED
            val[enc ^ 1] = _UNASSIGNED
            reason[var] = _NO_CREF
            heapq.heappush(order, (-activity[var], var))
        del trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(trail)

    def _pick_branch(self):
        order = self._order
        val = self._val
        phase = self._phase
        while order:
            _, var = heapq.heappop(order)
            if val[var << 1] == _UNASSIGNED:
                return (var << 1) if phase[var] else (var << 1) | 1
        return _NO_CREF

    # ------------------------------------------------------------------
    # Activities
    # ------------------------------------------------------------------
    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            self._rescale_var_activity()
        if self._val[var << 1] == _UNASSIGNED:
            heapq.heappush(self._order, (-self._activity[var], var))

    def _rescale_var_activity(self):
        for var in range(1, self._num_vars + 1):
            self._activity[var] *= 1e-100
        self._var_inc *= 1e-100
        self._order = [(-self._activity[var], var)
                       for var in range(1, self._num_vars + 1)
                       if self._val[var << 1] == _UNASSIGNED]
        heapq.heapify(self._order)

    def _bump_clause(self, cref):
        cla_act = self._cla_act
        cla_act[cref] += self._cla_inc
        if cla_act[cref] > 1e100:
            for other in cla_act:
                cla_act[other] *= 1e-100
            self._cla_inc *= 1e-100

    def _decay_activities(self):
        self._var_inc *= self._var_decay
        self._cla_inc *= self._cla_decay


def _luby(index):
    """Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq
