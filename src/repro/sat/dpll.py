"""Reference DPLL solver.

A deliberately simple solver (unit propagation + chronological
backtracking, no learning) used as an independent correctness oracle for
the CDCL engine in property tests. Only suitable for small formulas.
"""

from __future__ import annotations

from repro.errors import SolverError

#: Sentinel returned by :func:`dpll_solve` when its ``interrupt``
#: callback fired mid-search (distinct from ``None`` = UNSAT).
INTERRUPTED = object()


class _Interrupted(Exception):
    """Internal signal: the interrupt callback asked the search to stop."""


def dpll_solve(cnf, assumptions=(), interrupt=None):
    """Return a model dict var->bool, or None if UNSAT.

    ``cnf`` is a :class:`repro.cnf.formula.Cnf`; ``assumptions`` are
    literals fixed before the search.  ``interrupt`` is an optional
    zero-arg callable polled at every search node; when it turns true
    the search stops and :data:`INTERRUPTED` is returned (this is what
    lets a racing portfolio cancel a losing DPLL worker).
    """
    assignment = {}
    for lit in assumptions:
        var = abs(lit)
        want = lit > 0
        if assignment.get(var, want) != want:
            return None
        assignment[var] = want

    clauses = [list(clause) for clause in cnf.clauses]
    try:
        result = _search(clauses, assignment, interrupt)
    except _Interrupted:
        return INTERRUPTED
    if result is None:
        return None
    model = {var: result.get(var, False) for var in range(1, cnf.num_vars + 1)}
    return model


def _simplify(clauses, assignment):
    """Unit-propagate; returns simplified clause list or None on conflict."""
    changed = True
    clauses = list(clauses)
    while changed:
        changed = False
        next_clauses = []
        for clause in clauses:
            satisfied = False
            remaining = []
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    remaining.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if not remaining:
                return None  # conflict
            if len(remaining) == 1:
                lit = remaining[0]
                assignment[abs(lit)] = lit > 0
                changed = True
            else:
                next_clauses.append(remaining)
        clauses = next_clauses
    return clauses


def _search(clauses, assignment, interrupt=None):
    if interrupt is not None and interrupt():
        raise _Interrupted
    clauses = _simplify(clauses, assignment)
    if clauses is None:
        return None
    if not clauses:
        return assignment
    # Branch on the first literal of the shortest clause.
    branch_clause = min(clauses, key=len)
    lit = branch_clause[0]
    for value in (lit > 0, lit < 0):
        trial = dict(assignment)
        trial[abs(lit)] = value
        result = _search(clauses, trial, interrupt)
        if result is not None:
            return result
    return None


def brute_force_models(cnf, max_vars=20):
    """All models by exhaustive enumeration (tiny formulas only)."""
    if cnf.num_vars > max_vars:
        raise SolverError(f"brute force capped at {max_vars} variables")
    models = []
    for bits in range(1 << cnf.num_vars):
        assignment = {
            var: bool((bits >> (var - 1)) & 1)
            for var in range(1, cnf.num_vars + 1)
        }
        if cnf.evaluate(assignment):
            models.append(assignment)
    return models
