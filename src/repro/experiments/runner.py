"""Experiment runner CLI.

Regenerate every table/figure of the paper::

    python -m repro.experiments all --scale 0.08 --out results/
    python -m repro.experiments table1 --effort standard --jobs 4
    repro-experiments fig7 --circuits b12 s9234

Each experiment prints a plain-text table mirroring the paper artifact
plus notes comparing against the published numbers.

Experiments run through the campaign layer: ``--jobs N`` attacks
independent cells on a process pool, and finished cells are cached
content-addressed under ``--cache-dir`` (default ``.repro-cache``, or
``$REPRO_CACHE_DIR``) so reruns and interrupted campaigns only pay for
the cells that changed.  ``--no-cache`` recomputes everything;
``repro-experiments status`` summarises the cache.

Sweeps too big for one host scale out with ``--backend distributed``
(plus ``--bind``/``--workers``): cells are shipped to ``repro-lock
worker`` agents on any reachable hosts, placed 2-D by ``(cells x
in-cell attack_jobs)``, and written back through the shared cache.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro._cliutils import add_backend_arguments, attack_jobs_arg, \
    make_executor_backend
from repro.campaign import Campaign, ResultStore, default_cache_dir, \
    render_status
from repro.errors import ReproError
from repro.experiments import (
    fig3_error_tables,
    fig4_tradeoff,
    fig6_overhead,
    fig7_fc,
    scaling,
    table1_sat_resilience,
    table2_removal,
)
from repro.experiments.common import DEFAULT_SCALE

EXPERIMENTS = {
    "fig3": lambda args, campaign: fig3_error_tables.run(
        campaign=campaign),
    "fig4": lambda args, campaign: fig4_tradeoff.run(
        campaign=campaign),
    "table1": lambda args, campaign: table1_sat_resilience.run(
        scale=args.scale, effort=args.effort, seed=args.seed,
        campaign=campaign, dip_batch=args.dip_batch,
        portfolio=args.portfolio, attack_jobs=args.attack_jobs),
    "fig7": lambda args, campaign: fig7_fc.run(
        scale=args.scale, names=args.circuits, seed=args.seed,
        n_samples=args.samples, campaign=campaign),
    "table2": lambda args, campaign: table2_removal.run(
        scale=args.scale, names=args.circuits, seed=args.seed,
        campaign=campaign),
    "fig6": lambda args, campaign: fig6_overhead.run(
        scale=args.scale, names=args.circuits, seed=args.seed,
        campaign=campaign),
    # Tiny sweep by default so `repro-experiments all` stays tractable;
    # the full-size sweep (and the JSON artifact) lives behind
    # `repro-lock scaling`.
    "scaling": lambda args, campaign: scaling.run(
        sizes=(60, 120, 240), ffs=10, pis=5, pos=5, seed=args.seed,
        max_dips=128, campaign=campaign),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the TriLock paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "status"],
                        help="which artifact to regenerate, or 'status' "
                             "to summarise the campaign result cache")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="suite size scale (default %(default)s; "
                             "interface widths never scale)")
    parser.add_argument("--effort", default="quick",
                        choices=["quick", "standard", "full"],
                        help="how many Table I cells to attack for real")
    parser.add_argument("--samples", type=int, default=800,
                        help="FC samples per point (paper: 800)")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="subset of suite circuits")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="directory for .txt dumps of each artifact")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent cells "
                             "(default %(default)s = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="campaign result cache directory (default "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell; do not read or write "
                             "the result cache")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        help="seconds one cell may run before it is "
                             "recorded as failed; enforced by the pool "
                             "(--jobs >= 2) and distributed backends "
                             "only — the inline backend cannot "
                             "interrupt a cell and warns")
    add_backend_arguments(parser)
    parser.add_argument("--attack-jobs", type=attack_jobs_arg, default=1,
                        help="worker processes racing solver "
                             "configurations inside one attack cell: "
                             "an int (default 1 = serial single solver) "
                             "or 'auto' (one per portfolio config, "
                             "clamped to the CPU budget)")
    parser.add_argument("--dip-batch", type=int, default=1,
                        help="distinguishing input patterns extracted "
                             "and pinned per miter round (default "
                             "%(default)s = classic SAT-attack loop)")
    parser.add_argument("--portfolio", default=None,
                        help="solver portfolio spec for attack cells: "
                             "'default', 'race', 'race2', 'all', or a "
                             "comma-separated backend list (see "
                             "repro.sat.backend_names)")
    return parser


def resolve_cache_dir(args):
    return args.cache_dir if args.cache_dir else default_cache_dir()


def make_campaign(args, err=None):
    """Build the campaign execution policy from CLI flags."""
    err = err if err is not None else sys.stderr
    store = None if args.no_cache else ResultStore(resolve_cache_dir(args))
    backend = make_executor_backend(args, err)
    progress = None
    if args.jobs > 1 or backend is not None:
        def progress(index, total, result):
            err.write(f"  [{index + 1}/{total}] {result.spec.describe()}: "
                      f"{result.status} ({result.elapsed:.2f}s)\n")
    return Campaign(jobs=args.jobs, store=store,
                    cell_timeout=args.cell_timeout, progress=progress,
                    backend=backend)


def run_experiment(name, args, campaign=None):
    campaign = campaign if campaign is not None else make_campaign(args)
    start = time.perf_counter()
    result = EXPERIMENTS[name](args, campaign)
    elapsed = time.perf_counter() - start
    text = result.render()
    if name == "fig3":
        text += "\n" + fig3_error_tables.render_tables(result)
    text += f"\n[{name} regenerated in {elapsed:.1f}s]\n"
    return text


#: Experiments that actually run a SAT attack and consume the
#: attack-engine knobs (--attack-jobs / --dip-batch / --portfolio).
ATTACK_EXPERIMENTS = frozenset(["table1"])


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "status":
        store = ResultStore(resolve_cache_dir(args))
        sys.stdout.write(render_status(store.status()) + "\n")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    engine_flags_set = (args.dip_batch != 1 or args.portfolio is not None
                        or args.attack_jobs != 1)
    if engine_flags_set and not ATTACK_EXPERIMENTS.intersection(names):
        sys.stderr.write(
            "warning: --attack-jobs/--dip-batch/--portfolio only affect "
            f"SAT-attack experiments ({', '.join(sorted(ATTACK_EXPERIMENTS))})"
            f"; {', '.join(names)} ignores them\n")
    try:
        campaign = make_campaign(args)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    exit_code = 0
    for name in names:
        try:
            text = run_experiment(name, args, campaign=campaign)
        except Exception as error:  # pragma: no cover - CLI robustness
            text = f"== {name}: FAILED: {error} ==\n"
            exit_code = 1
        sys.stdout.write(text + "\n")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
    stats = campaign.stats()
    if stats is not None:
        sys.stderr.write(f"[cache: {stats.summary()}]\n")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
