"""Experiment runner CLI.

Regenerate every table/figure of the paper::

    python -m repro.experiments all --scale 0.08 --out results/
    python -m repro.experiments table1 --effort standard
    repro-experiments fig7 --circuits b12 s9234

Each experiment prints a plain-text table mirroring the paper artifact
plus notes comparing against the published numbers.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    fig3_error_tables,
    fig4_tradeoff,
    fig6_overhead,
    fig7_fc,
    table1_sat_resilience,
    table2_removal,
)
from repro.experiments.common import DEFAULT_SCALE

EXPERIMENTS = {
    "fig3": lambda args: fig3_error_tables.run(),
    "fig4": lambda args: fig4_tradeoff.run(),
    "table1": lambda args: table1_sat_resilience.run(
        scale=args.scale, effort=args.effort, seed=args.seed),
    "fig7": lambda args: fig7_fc.run(
        scale=args.scale, names=args.circuits, seed=args.seed,
        n_samples=args.samples),
    "table2": lambda args: table2_removal.run(
        scale=args.scale, names=args.circuits, seed=args.seed),
    "fig6": lambda args: fig6_overhead.run(
        scale=args.scale, names=args.circuits, seed=args.seed),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the TriLock paper's tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="suite size scale (default %(default)s; "
                             "interface widths never scale)")
    parser.add_argument("--effort", default="quick",
                        choices=["quick", "standard", "full"],
                        help="how many Table I cells to attack for real")
    parser.add_argument("--samples", type=int, default=800,
                        help="FC samples per point (paper: 800)")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="subset of suite circuits")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="directory for .txt dumps of each artifact")
    return parser


def run_experiment(name, args):
    start = time.perf_counter()
    result = EXPERIMENTS[name](args)
    elapsed = time.perf_counter() - start
    text = result.render()
    if name == "fig3":
        text += "\n" + fig3_error_tables.render_tables(result)
    text += f"\n[{name} regenerated in {elapsed:.1f}s]\n"
    return text


def main(argv=None):
    args = build_parser().parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    exit_code = 0
    for name in names:
        try:
            text = run_experiment(name, args)
        except Exception as error:  # pragma: no cover - CLI robustness
            text = f"== {name}: FAILED: {error} ==\n"
            exit_code = 1
        sys.stdout.write(text + "\n")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
