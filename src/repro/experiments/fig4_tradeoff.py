"""Fig. 4 — the ``ndip`` vs ``FC_b`` trade-off and its circumvention.

Panel (a): the naive ``E^N`` on a 4-input circuit, ``κ = 1..10``:
``ndip`` grows exponentially while ``FC ≈ 1/(ndip+1)`` collapses (Eq. 7).

Panel (b): ``E^SF`` with ``κf = 1``: ``ndip = 2^{κs|I|}`` stays
exponential while ``FC`` is pinned near ``α(1 − 2^{−κf|I|})`` (Eq. 15)
independently of ``κs`` — the trade-off is broken.

The analytic curves are cross-validated against exhaustive error tables
at the small-``κ`` end.  (This is the one experiment with no gate-level
locking step, so it has nothing to route through the
:mod:`repro.api` scheme registry.)
"""

from __future__ import annotations

from repro.campaign import Campaign, CellSpec
from repro.core import (
    ErrorSpec,
    fc_naive_approx,
    fc_naive_exact,
    fc_trilock,
    fc_trilock_exact,
    naive_error_table,
    ndip_naive,
    ndip_trilock,
    spec_error_table,
)
from repro.experiments.common import ExperimentResult

WIDTH = 4  # the paper's "4-input circuit"
ALPHAS = (0.0, 0.3, 0.6, 0.9)


def curves_cell(max_kappa, validate):
    """The analytic Fig. 4 curves plus the exhaustive cross-validation."""
    rows = []
    notes = []

    for kappa in range(1, max_kappa + 1):
        rows.append({
            "panel": "a",
            "kappa": kappa,
            "ndip": ndip_naive(kappa, WIDTH),
            "FC": fc_naive_approx(kappa, WIDTH),
        })

    for alpha in ALPHAS:
        for kappa_s in range(1, max_kappa + 1):
            rows.append({
                "panel": "b",
                "kappa": kappa_s,
                "alpha": alpha,
                "ndip": ndip_trilock(kappa_s, WIDTH),
                "FC": fc_trilock(alpha, 1, WIDTH),
            })

    if validate:
        # Exhaustive check at kappa = 1 (the largest tractable table).
        table_a = naive_error_table(1, WIDTH, key_star=0b0110, depth=1)
        exact_a = fc_naive_exact(1, WIDTH, b=1)
        assert table_a.fc() == exact_a
        notes.append(
            f"validated: exhaustive E^N table at kappa=1 gives FC="
            f"{table_a.fc():.4f} = Eq.(7) exact")

        spec = ErrorSpec(width=WIDTH, kappa_s=1, kappa_f=1,
                         key_star=0b01100011, key_star_star=0b0001,
                         alpha=0.6)
        table_b = spec_error_table(spec, depth=1)
        exact_b = fc_trilock_exact(spec, 1)
        assert abs(table_b.fc() - exact_b) < 1e-12
        notes.append(
            f"validated: exhaustive E^SF table at kappa_s=1, alpha=0.6 "
            f"gives FC={table_b.fc():.4f} (Eq.15 predicts "
            f"{fc_trilock(0.6, 1, WIDTH):.4f})")

    return {"rows": rows, "notes": notes}


def cells(max_kappa=10, validate=True):
    """The whole figure is one cheap analytic cell."""
    return [CellSpec.make(
        "repro.experiments.fig4_tradeoff:curves_cell",
        {"max_kappa": max_kappa, "validate": validate},
        experiment="fig4", label="fig4/curves")]


def run(max_kappa=10, validate=True, campaign=None):
    campaign = campaign if campaign is not None else Campaign()
    values = campaign.values(cells(max_kappa=max_kappa, validate=validate))
    return assemble(values)


def assemble(values):
    (value,) = values
    notes = list(value["notes"])
    notes.append(
        "paper shape: (a) FC ~ 1/(ndip+1) anti-correlation; (b) flat FC "
        "levels at alpha*(1-2^-4)=alpha*0.9375 with unchanged exponential "
        "ndip")
    return ExperimentResult(
        experiment="fig4",
        title="ndip vs FC: E^N trade-off (a) and E^SF decoupling (b)",
        parameters={"|I|": WIDTH, "kappa_f": 1, "alphas": ALPHAS},
        rows=value["rows"],
        notes=notes,
    )
