"""Attack-cost scaling laws over synthetic circuit size.

The paper quotes SAT-attack cost at ten fixed circuits; this experiment
turns those isolated data points into fitted trends.  It sweeps the
``synth`` circuit family over gate counts (interface width fixed, so
the key space — and with it the paper's ``ndip = 2^{κs·|I|}`` iteration
bound — stays constant per scheme), runs the SAT attack through
ordinary matrix campaign cells, and fits per-scheme power laws
``cost ~ gates^e`` by log-log least squares, following the protocol of
"Complexity Analysis of the SAT Attack on Logic Locking"
(arXiv:2207.01808).

Two exponents are reported per scheme:

* ``n_dips`` vs gates — expected ≈ 0 at fixed ``|I|`` (iteration count
  is key-space-driven, the paper's Theorem 1);
* wall-clock vs gates — the per-iteration solver/oracle cost, which is
  where circuit size actually bites.

``repro-lock scaling`` is the CLI front-end; it writes the fitted
report as ``benchmarks/artifacts/BENCH_scaling.json``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import replace

from repro.api import canonical_scheme_spec, expand_grid, matrix_cells
from repro.api.cells import resolve_scheme_spec
from repro.campaign import Campaign
from repro.experiments.common import ExperimentResult, engineering

DEFAULT_SIZES = (150, 400, 1100)
DEFAULT_SCHEMES = ("trilock?kappa_s=1&s_pairs=4", "sarlock", "sublock")
DEFAULT_ATTACK = "seq-sat"
DEFAULT_ARTIFACT = os.path.join("benchmarks", "artifacts",
                                "BENCH_scaling.json")


def fit_power_law(points):
    """Least-squares fit of ``y = c * x^e`` on log-log axes.

    ``points`` is an iterable of ``(x, y)``; non-positive values cannot
    be log-fitted and are dropped.  Returns ``{"exponent", "coefficient",
    "r2", "points"}`` or ``None`` when fewer than two usable points
    remain (or all x coincide).
    """
    usable = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(usable) < 2:
        return None
    xs = [math.log(x) for x, _ in usable]
    ys = [math.log(y) for _, y in usable]
    n = len(usable)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (intercept + slope * x)) ** 2
                 for x, y in zip(xs, ys))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return {"exponent": slope, "coefficient": math.exp(intercept),
            "r2": r2, "points": n}


def expanded_schemes(schemes):
    """Scheme specs expanded (``|``/``lo..hi`` grids) and canonicalised."""
    return list(dict.fromkeys(
        canonical_scheme_spec(spec)
        for gridded in schemes for spec in expand_grid(gridded)))


def circuit_spec(gates, ffs, pis, pos, seed):
    return (f"synth?gates={gates}&ffs={ffs}&pis={pis}&pos={pos}"
            f"&seed={seed}")


def cells(sizes=DEFAULT_SIZES, schemes=DEFAULT_SCHEMES,
          attack=DEFAULT_ATTACK, ffs=12, pis=6, pos=6, seed=0,
          max_dips=256, time_budget=None):
    """One matrix cell per (scheme, size), scheme-major.

    ``schemes`` must already be expanded (see :func:`expanded_schemes`)
    when grids are in play; :func:`run` does this for callers.
    """
    specs = []
    for scheme in expanded_schemes(schemes):
        short = scheme.partition("?")[0]
        for gates in sizes:
            (spec,) = matrix_cells(
                [circuit_spec(gates, ffs, pis, pos, seed)], [scheme],
                [attack], seed=seed, max_dips=max_dips,
                time_budget=time_budget)
            specs.append(replace(spec, experiment="scaling",
                                 label=f"scaling/{short}/g={gates}"))
    return specs


def _short_scheme(spec):
    scheme, params = resolve_scheme_spec(spec)
    return scheme.short_spec(**params)


def compile_report(results, sizes, schemes, attack, parameters):
    """The machine-readable scaling report (the JSON artifact payload).

    ``results`` are campaign results in the (scheme-major) order
    :func:`cells` emits.  Fits prefer finished (successful) attack
    points; if fewer than two finished, all points with data are used
    and the basis is recorded.
    """
    grid = [(scheme, gates) for scheme in schemes for gates in sizes]
    by_scheme = {scheme: [] for scheme in schemes}
    for (scheme, gates), result in zip(grid, results, strict=True):
        point = {"gates": gates, "success": False, "n_dips": None,
                 "seconds": None, "error": None}
        if result.ok:
            value = result.value
            point["success"] = bool(value["success"])
            point["n_dips"] = value["metrics"].get("n_dips")
            point["seconds"] = value["seconds"]
        else:
            point["error"] = result.error
        by_scheme[scheme].append(point)

    scheme_reports = []
    for scheme in schemes:
        points = by_scheme[scheme]
        finished = [p for p in points if p["success"]]
        sample = finished if len(finished) >= 2 else \
            [p for p in points if p["seconds"] is not None]
        fits = {
            "seconds": fit_power_law(
                [(p["gates"], p["seconds"]) for p in sample
                 if p["seconds"]]),
            "n_dips": fit_power_law(
                [(p["gates"], p["n_dips"]) for p in sample
                 if p["n_dips"]]),
        }
        scheme_reports.append({
            "scheme": scheme,
            "scheme_short": _short_scheme(scheme),
            "points": points,
            "fit_basis": "finished" if len(finished) >= 2 else "all",
            "fits": fits,
        })
    return {
        "experiment": "scaling",
        "attack": attack,
        "parameters": parameters,
        "schemes": scheme_reports,
    }


def write_artifact(report, path):
    """Write the JSON artifact; returns the path."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def assemble(report):
    """Render the scaling report as an :class:`ExperimentResult`."""
    rows = []
    notes = []
    for entry in report["schemes"]:
        short = entry["scheme_short"]
        for point in entry["points"]:
            rows.append({
                "scheme": short,
                "gates": point["gates"],
                "success": point["success"],
                "ndip": "" if point["n_dips"] is None
                        else engineering(point["n_dips"]),
                "T(s)": "failed" if point["seconds"] is None
                        else engineering(point["seconds"]),
            })
        time_fit = entry["fits"]["seconds"]
        dip_fit = entry["fits"]["n_dips"]
        if time_fit is None:
            notes.append(f"{short}: not enough points to fit")
            continue
        note = (f"{short}: T(s) ~ gates^{time_fit['exponent']:.2f} "
                f"(R²={time_fit['r2']:.3f}")
        if dip_fit is not None:
            note += (f"), ndip ~ gates^{dip_fit['exponent']:.2f} "
                     f"(R²={dip_fit['r2']:.3f}")
        note += f") over {time_fit['points']} {entry['fit_basis']} points"
        notes.append(note)
    notes.append(
        "interface width |I| is held fixed across the sweep, so ndip "
        "(key-space-driven, Theorem 1) should stay flat while wall-clock "
        "grows with gate count — the per-iteration solver/oracle cost is "
        "the fitted law (cf. arXiv:2207.01808)")
    return ExperimentResult(
        experiment="scaling",
        title="Attack-cost scaling over synthetic circuit size",
        parameters=dict(report["parameters"], attack=report["attack"]),
        rows=rows,
        notes=notes,
    )


def run(sizes=DEFAULT_SIZES, schemes=DEFAULT_SCHEMES, attack=DEFAULT_ATTACK,
        ffs=12, pis=6, pos=6, seed=0, max_dips=256, time_budget=None,
        campaign=None, artifact_path=None):
    """Sweep, attack, fit; optionally write the JSON artifact."""
    campaign = campaign if campaign is not None else Campaign()
    schemes = expanded_schemes(schemes)
    specs = cells(sizes=sizes, schemes=schemes, attack=attack, ffs=ffs,
                  pis=pis, pos=pos, seed=seed, max_dips=max_dips,
                  time_budget=time_budget)
    results = campaign.run(specs)
    parameters = {"sizes": list(sizes), "ffs": ffs, "pis": pis, "pos": pos,
                  "seed": seed, "max_dips": max_dips,
                  "time_budget": time_budget}
    report = compile_report(results, sizes, schemes, attack=attack,
                            parameters=parameters)
    if artifact_path:
        write_artifact(report, artifact_path)
    return assemble(report)
