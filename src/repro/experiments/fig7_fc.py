"""Fig. 7 — simulated ``FC_b`` versus ``α`` for ``κf ∈ {1, 2, 3}``.

Paper protocol: ``κs = 4`` (already highly SAT-resilient), 800 random
input/key samples per point, FC averaged over ``b ∈ [κs, κs+5]``;
simulated FC tracks Eq. (15) within ±0.05.
"""

from __future__ import annotations

from repro.core import TriLockConfig, fc_trilock, lock
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    suite_circuits,
)
from repro.metrics import (
    PAPER_FC_SAMPLES,
    average_simulated_fc,
    paper_depth_range,
)

KAPPA_S = 4
ALPHAS = (0.0, 0.3, 0.6, 0.9)
KAPPA_FS = (1, 2, 3)


def run(scale=DEFAULT_SCALE, names=None, alphas=ALPHAS, kappa_fs=KAPPA_FS,
        kappa_s=KAPPA_S, n_samples=PAPER_FC_SAMPLES, depth_span=5, seed=0):
    circuits = suite_circuits(scale=scale, names=names, seed=seed)
    depths = paper_depth_range(kappa_s, span=depth_span)
    rows = []
    worst_gap = 0.0
    for name, netlist in circuits:
        for kappa_f in kappa_fs:
            for alpha in alphas:
                locked = lock(netlist, TriLockConfig(
                    kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha,
                    seed=seed))
                simulated = average_simulated_fc(
                    locked, depths, n_samples=n_samples, seed=seed)
                predicted = fc_trilock(alpha, kappa_f,
                                       len(netlist.inputs))
                gap = abs(simulated - predicted)
                worst_gap = max(worst_gap, gap)
                rows.append({
                    "circuit": name,
                    "kappa_f": kappa_f,
                    "alpha": alpha,
                    "FC_sim": simulated,
                    "FC_eq15": predicted,
                    "abs_err": gap,
                })
    notes = [
        f"FC averaged over b in {depths} with {n_samples} samples/point",
        f"worst |simulated - Eq.15| = {worst_gap:.3f} "
        "(paper reports within 0.05)",
    ]
    return ExperimentResult(
        experiment="fig7",
        title="Simulated FC_b vs alpha and kappa_f",
        parameters={"kappa_s": kappa_s, "scale": scale,
                    "samples": n_samples},
        rows=rows,
        notes=notes,
    )
