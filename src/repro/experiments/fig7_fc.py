"""Fig. 7 — simulated ``FC_b`` versus ``α`` for ``κf ∈ {1, 2, 3}``.

Paper protocol: ``κs = 4`` (already highly SAT-resilient), 800 random
input/key samples per point, FC averaged over ``b ∈ [κs, κs+5]``;
simulated FC tracks Eq. (15) within ±0.05.
"""

from __future__ import annotations

from repro.api import SCHEMES, canonical_circuit_spec, load_circuit
from repro.bench.suite import suite_names
from repro.campaign import Campaign, CellSpec
from repro.core import fc_trilock
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
)
from repro.metrics import (
    PAPER_FC_SAMPLES,
    average_simulated_fc,
    paper_depth_range,
)

KAPPA_S = 4
ALPHAS = (0.0, 0.3, 0.6, 0.9)
KAPPA_FS = (1, 2, 3)


def fc_cell(circuit, seed, kappa_s, kappa_f, alpha, n_samples,
            depth_span):
    """One Fig. 7 point: load the circuit-provider spec, lock (via the
    scheme registry), and average simulated FC over the paper's depth
    window."""
    netlist = load_circuit(circuit)
    locked = SCHEMES.get("trilock").lock(
        netlist, seed=seed, kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha)
    depths = paper_depth_range(kappa_s, span=depth_span)
    simulated = average_simulated_fc(
        locked, depths, n_samples=n_samples, seed=seed)
    return {"FC_sim": simulated, "width": len(netlist.inputs)}


def cells(scale=DEFAULT_SCALE, names=None, alphas=ALPHAS, kappa_fs=KAPPA_FS,
          kappa_s=KAPPA_S, n_samples=PAPER_FC_SAMPLES, depth_span=5, seed=0):
    """One cell per (circuit, kappa_f, alpha); circuits enter as
    canonical provider specs (bare suite names accepted)."""
    selected = names if names is not None else suite_names()
    circuit_defaults = {"scale": scale, "seed": seed}
    return [
        CellSpec.make(
            "repro.experiments.fig7_fc:fc_cell",
            {"circuit": canonical_circuit_spec(name,
                                               defaults=circuit_defaults),
             "seed": seed,
             "kappa_s": kappa_s, "kappa_f": kappa_f, "alpha": alpha,
             "n_samples": n_samples, "depth_span": depth_span},
            experiment="fig7", label=f"fig7/{name}/kf={kappa_f}/a={alpha}")
        for name in selected for kappa_f in kappa_fs for alpha in alphas
    ]


def run(scale=DEFAULT_SCALE, names=None, alphas=ALPHAS, kappa_fs=KAPPA_FS,
        kappa_s=KAPPA_S, n_samples=PAPER_FC_SAMPLES, depth_span=5, seed=0,
        campaign=None):
    campaign = campaign if campaign is not None else Campaign()
    specs = cells(scale=scale, names=names, alphas=alphas, kappa_fs=kappa_fs,
                  kappa_s=kappa_s, n_samples=n_samples,
                  depth_span=depth_span, seed=seed)
    values = campaign.values(specs)
    return assemble(values, scale=scale, names=names, alphas=alphas,
                    kappa_fs=kappa_fs, kappa_s=kappa_s, n_samples=n_samples,
                    depth_span=depth_span)


def assemble(values, scale=DEFAULT_SCALE, names=None, alphas=ALPHAS,
             kappa_fs=KAPPA_FS, kappa_s=KAPPA_S, n_samples=PAPER_FC_SAMPLES,
             depth_span=5):
    selected = names if names is not None else suite_names()
    depths = paper_depth_range(kappa_s, span=depth_span)
    rows = []
    worst_gap = 0.0
    points = ((name, kappa_f, alpha) for name in selected
              for kappa_f in kappa_fs for alpha in alphas)
    for (name, kappa_f, alpha), cell in zip(points, values, strict=True):
        simulated = cell["FC_sim"]
        predicted = fc_trilock(alpha, kappa_f, cell["width"])
        gap = abs(simulated - predicted)
        worst_gap = max(worst_gap, gap)
        rows.append({
            "circuit": name,
            "kappa_f": kappa_f,
            "alpha": alpha,
            "FC_sim": simulated,
            "FC_eq15": predicted,
            "abs_err": gap,
        })
    notes = [
        f"FC averaged over b in {depths} with {n_samples} samples/point",
        f"worst |simulated - Eq.15| = {worst_gap:.3f} "
        "(paper reports within 0.05)",
    ]
    return ExperimentResult(
        experiment="fig7",
        title="Simulated FC_b vs alpha and kappa_f",
        parameters={"kappa_s": kappa_s, "scale": scale,
                    "samples": n_samples},
        rows=rows,
        notes=notes,
    )
