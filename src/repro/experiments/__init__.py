"""Regeneration of every table and figure in the paper's evaluation."""

from repro.experiments.common import DEFAULT_SCALE, ExperimentResult, format_table

__all__ = ["DEFAULT_SCALE", "ExperimentResult", "format_table"]
