"""Fig. 3 — error tables of ``E^N`` and ``E^SF``.

The paper draws two exhaustive error tables for a 2-input circuit:
(a) the naive point function with ``|I| = κ = b* = b = 2``;
(b) the TriLock function with ``κs = b* = b = 2``, ``κf = 1``,
``k* = 100101`` and ``k** = 11`` (red prefix diagonal + blue columns).

This experiment regenerates both tables twice — from the closed-form
error functions and exhaustively from a real gate-level locked circuit —
and checks they agree cell-for-cell.
"""

from __future__ import annotations

from repro.api import SCHEMES
from repro.bench.synth import generate_circuit
from repro.campaign import Campaign, CellSpec
from repro.core import (
    measured_error_table,
    naive_error_table,
    spec_error_table,
)
from repro.experiments.common import ExperimentResult

#: Fig. 3's constants.
WIDTH = 2
KAPPA_S = 2
KAPPA_F = 1
KEY_STAR = 0b100101
KEY_STAR_STAR = 0b11
NAIVE_KEY = 0b1001  # E^N key = k* prefix, κ = 2

PANELS = ("(a) E^N", "(b) E^SF")


def _host_circuit():
    return generate_circuit("fig3_host", n_inputs=WIDTH, n_outputs=2,
                            n_flops=3, n_gates=14, seed=1)


def panel_cell(panel, alpha):
    """One Fig. 3 panel: exhaustive spec table vs gate-level table.

    Both panels lock through the :mod:`repro.api` scheme registry
    (``naive`` / ``trilock``), which wraps the legacy config-based flow
    one-to-one."""
    host = _host_circuit()
    if panel == "(a) E^N":
        locked = SCHEMES.get("naive").lock(
            host, seed=2, kappa=KAPPA_S, key_star=NAIVE_KEY)
        spec = naive_error_table(KAPPA_S, WIDTH, NAIVE_KEY, depth=KAPPA_S)
    elif panel == "(b) E^SF":
        locked = SCHEMES.get("trilock").lock(
            host, seed=2, kappa_s=KAPPA_S, kappa_f=KAPPA_F, alpha=alpha,
            key_star=KEY_STAR, key_star_star=KEY_STAR_STAR)
        spec = spec_error_table(locked.spec, depth=KAPPA_S)
    else:
        raise ValueError(f"unknown Fig. 3 panel {panel!r}")
    measured = measured_error_table(locked, depth=KAPPA_S)
    return {
        "row": {
            "panel": panel,
            "inputs": spec.n_inputs,
            "keys": spec.n_keys,
            "errors": spec.error_count(),
            "FC": spec.fc(),
            "gate_level_matches_spec": measured.rows == spec.rows,
        },
        "ascii": spec.render(),
    }


def cells(alpha=1.0):
    """One cell per panel."""
    return [
        CellSpec.make(
            "repro.experiments.fig3_error_tables:panel_cell",
            {"panel": panel, "alpha": alpha},
            experiment="fig3", label=f"fig3/{panel}")
        for panel in PANELS
    ]


def run(alpha=1.0, campaign=None):
    """Regenerate Fig. 3; ``alpha=1`` selects every blue square as the
    paper's drawing does."""
    campaign = campaign if campaign is not None else Campaign()
    values = campaign.values(cells(alpha=alpha))
    return assemble(values, alpha=alpha)


def assemble(values, alpha=1.0):
    result = ExperimentResult(
        experiment="fig3",
        title="Error tables of E^N and E^SF (exhaustive, spec vs gate level)",
        parameters={
            "|I|": WIDTH, "kappa_s": KAPPA_S, "kappa_f": KAPPA_F,
            "k*": bin(KEY_STAR), "k**": bin(KEY_STAR_STAR), "alpha": alpha,
        },
        rows=[value["row"] for value in values],
        notes=[
            "paper: panel (a) FC ~= 0.06 (Eq. 7); panel (b) FC up to 0.75 "
            "(Eq. 12) when all P entries are selected",
            "ASCII renderings follow",
        ],
    )
    result.tables = {
        panel: value["ascii"]
        for panel, value in zip(PANELS, values, strict=True)
    }
    return result


def render_tables(result):
    """ASCII art of both panels (inputs as rows, keys as columns)."""
    parts = []
    for label in PANELS:
        parts.append(label)
        parts.append(result.tables[label])
    return "\n".join(parts)
