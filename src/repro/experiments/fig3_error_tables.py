"""Fig. 3 — error tables of ``E^N`` and ``E^SF``.

The paper draws two exhaustive error tables for a 2-input circuit:
(a) the naive point function with ``|I| = κ = b* = b = 2``;
(b) the TriLock function with ``κs = b* = b = 2``, ``κf = 1``,
``k* = 100101`` and ``k** = 11`` (red prefix diagonal + blue columns).

This experiment regenerates both tables twice — from the closed-form
error functions and exhaustively from a real gate-level locked circuit —
and checks they agree cell-for-cell.
"""

from __future__ import annotations

from repro.bench.synth import generate_circuit
from repro.core import (
    TriLockConfig,
    lock,
    measured_error_table,
    naive_config,
    naive_error_table,
    spec_error_table,
)
from repro.experiments.common import ExperimentResult

#: Fig. 3's constants.
WIDTH = 2
KAPPA_S = 2
KAPPA_F = 1
KEY_STAR = 0b100101
KEY_STAR_STAR = 0b11
NAIVE_KEY = 0b1001  # E^N key = k* prefix, κ = 2


def _host_circuit():
    return generate_circuit("fig3_host", n_inputs=WIDTH, n_outputs=2,
                            n_flops=3, n_gates=14, seed=1)


def run(alpha=1.0):
    """Regenerate Fig. 3; ``alpha=1`` selects every blue square as the
    paper's drawing does."""
    host = _host_circuit()

    naive_locked = lock(host, naive_config(
        KAPPA_S, key_star=NAIVE_KEY, seed=2))
    naive_spec = naive_error_table(KAPPA_S, WIDTH, NAIVE_KEY, depth=KAPPA_S)
    naive_measured = measured_error_table(naive_locked, depth=KAPPA_S)

    trilock = lock(host, TriLockConfig(
        kappa_s=KAPPA_S, kappa_f=KAPPA_F, alpha=alpha,
        key_star=KEY_STAR, key_star_star=KEY_STAR_STAR, seed=2))
    trilock_spec = spec_error_table(trilock.spec, depth=KAPPA_S)
    trilock_measured = measured_error_table(trilock, depth=KAPPA_S)

    rows = [
        {
            "panel": "(a) E^N",
            "inputs": naive_spec.n_inputs,
            "keys": naive_spec.n_keys,
            "errors": naive_spec.error_count(),
            "FC": naive_spec.fc(),
            "gate_level_matches_spec":
                naive_measured.rows == naive_spec.rows,
        },
        {
            "panel": "(b) E^SF",
            "inputs": trilock_spec.n_inputs,
            "keys": trilock_spec.n_keys,
            "errors": trilock_spec.error_count(),
            "FC": trilock_spec.fc(),
            "gate_level_matches_spec":
                trilock_measured.rows == trilock_spec.rows,
        },
    ]
    result = ExperimentResult(
        experiment="fig3",
        title="Error tables of E^N and E^SF (exhaustive, spec vs gate level)",
        parameters={
            "|I|": WIDTH, "kappa_s": KAPPA_S, "kappa_f": KAPPA_F,
            "k*": bin(KEY_STAR), "k**": bin(KEY_STAR_STAR), "alpha": alpha,
        },
        rows=rows,
        notes=[
            "paper: panel (a) FC ~= 0.06 (Eq. 7); panel (b) FC up to 0.75 "
            "(Eq. 12) when all P entries are selected",
            "ASCII renderings follow",
        ],
    )
    result.tables = {
        "naive_spec": naive_spec,
        "trilock_spec": trilock_spec,
        "naive_measured": naive_measured,
        "trilock_measured": trilock_measured,
    }
    return result


def render_tables(result):
    """ASCII art of both panels (inputs as rows, keys as columns)."""
    parts = []
    for label, table in (("(a) E^N", result.tables["naive_spec"]),
                         ("(b) E^SF", result.tables["trilock_spec"])):
        parts.append(label)
        parts.append(table.render())
    return "\n".join(parts)
