"""Table II — removal-attack resilience via SCC statistics.

For every suite circuit and ``S ∈ {0, 10, 30}``: lock, run the SCC
clustering on the register connection graph, and report the number of
all-original (O), all-extra (E) and mixed (M) SCCs plus ``P_M``, the
percentage of registers inside M-SCCs. The paper's qualitative claims:

* ``S = 0`` — clean separation: many O- and E-SCCs, no M-SCC, P_M = 0;
* ``S = 10`` — E-SCCs essentially vanish, one M-SCC, P_M ≈ 90–100;
* ``S = 30`` — stronger still.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import matrix_cells
from repro.bench.suite import suite_names
from repro.campaign import Campaign
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
)

#: Paper Table II: circuit -> S -> (O, E, M, PM).
PAPER_TABLE2 = {
    "s9234": {0: (72, 79, 0, 0), 10: (12, 0, 1, 95.2), 30: (0, 0, 1, 100)},
    "s15850": {0: (203, 93, 0, 0), 10: (39, 0, 1, 94.0),
               30: (14, 0, 1, 97.9)},
    "s35932": {0: (18, 317, 0, 0), 10: (0, 0, 1, 100), 30: (0, 0, 1, 100)},
    "s38417": {0: (889, 198, 0, 0), 10: (36, 0, 1, 97.9),
               30: (20, 0, 1, 98.9)},
    "s38584": {0: (735, 79, 0, 0), 10: (30, 0, 1, 97.5), 30: (0, 0, 1, 100)},
    "b12": {0: (19, 37, 0, 0), 10: (0, 0, 1, 100), 30: (0, 0, 1, 100)},
    "b14": {0: (57, 226, 0, 0), 10: (45, 0, 1, 90.4), 30: (24, 0, 1, 95.1)},
    "b15": {0: (141, 254, 0, 0), 10: (91, 0, 1, 87.1), 30: (61, 0, 1, 91.8)},
    "b18": {0: (95, 261, 0, 0), 10: (53, 0, 1, 98.4), 30: (42, 0, 1, 98.7)},
    "b20": {0: (43, 226, 0, 0), 10: (31, 0, 1, 95.6), 30: (10, 0, 1, 98.6)},
}

S_VALUES = (0, 10, 30)


def cells(scale=DEFAULT_SCALE, names=None, s_values=S_VALUES, kappa_s=3,
          kappa_f=1, alpha=0.6, seed=0, include_trivial=False):
    """One matrix cell per (circuit, S).

    Built from :func:`repro.api.matrix_cells` over an ``s_pairs`` grid
    and the census-only removal attack (``removal?strip=false`` — the
    O/E/M/PM columns come from the SCC report, no strip-and-solve), so
    Table II shares cache entries with equivalent matrix runs."""
    selected = names if names is not None else suite_names()
    s_grid = "|".join(str(s) for s in s_values)
    scheme = (f"trilock?kappa_s={kappa_s}&kappa_f={kappa_f}"
              f"&alpha={alpha}&s_pairs={s_grid}")
    attack = ("removal?strip=false&include_trivial="
              + ("true" if include_trivial else "false"))
    specs = []
    for name in selected:
        grid = matrix_cells([name], [scheme], [attack], scale=scale,
                            seed=seed)
        for spec, s_pairs in zip(grid, s_values, strict=True):
            specs.append(replace(spec, experiment="table2",
                                 label=f"table2/{name}/S={s_pairs}"))
    return specs


def run(scale=DEFAULT_SCALE, names=None, s_values=S_VALUES, kappa_s=3,
        kappa_f=1, alpha=0.6, seed=0, include_trivial=False, campaign=None):
    campaign = campaign if campaign is not None else Campaign()
    specs = cells(scale=scale, names=names, s_values=s_values,
                  kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha, seed=seed,
                  include_trivial=include_trivial)
    values = campaign.values(specs)
    return assemble(values, scale=scale, names=names, s_values=s_values,
                    kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha)


def assemble(values, scale=DEFAULT_SCALE, names=None, s_values=S_VALUES,
             kappa_s=3, kappa_f=1, alpha=0.6):
    selected = names if names is not None else suite_names()
    rows = []
    for (name, s_pairs), cell in zip(
            ((n, s) for n in selected for s in s_values), values,
            strict=True):
        # Matrix cells return the full AttackOutcome payload; the SCC
        # census lives in its metrics.
        census = cell.get("metrics", cell)
        paper = PAPER_TABLE2.get(name, {}).get(s_pairs)
        rows.append({
            "circuit": name,
            "S": s_pairs,
            "O": census["O"],
            "E": census["E"],
            "M": census["M"],
            "PM": census["PM"],
            "pairs_applied": census["pairs_applied"],
            "paper_O/E/M/PM": "/".join(str(v) for v in paper)
                              if paper else "—",
        })

    def average_reduction(kind_index, s_pairs):
        base = {row["circuit"]: row for row in rows if row["S"] == 0}
        cur = [row for row in rows if row["S"] == s_pairs]
        reductions = []
        key = "O" if kind_index == 0 else "E"
        for row in cur:
            before = base[row["circuit"]][key]
            if before:
                reductions.append(1 - row[key] / before)
        return 100 * sum(reductions) / len(reductions) if reductions else 0.0

    notes = []
    for s_pairs in s_values:
        if s_pairs == 0:
            continue
        notes.append(
            f"S={s_pairs}: O-SCCs reduced {average_reduction(0, s_pairs):.1f}%"
            f", E-SCCs reduced {average_reduction(1, s_pairs):.1f}% on "
            "average (paper: 71.71%/100% at S=10, 83.80%/100% at S=30)")
    notes.append(
        "absolute SCC counts depend on circuit scale and the authors' "
        "unpublished FSM microarchitecture; the structure (S=0 separable, "
        "S>0 one dominant M-SCC with PM->100) is the reproduced claim")
    return ExperimentResult(
        experiment="table2",
        title="Removal-attack resilience of TriLock",
        parameters={"kappa_s": kappa_s, "kappa_f": kappa_f, "alpha": alpha,
                    "scale": scale},
        rows=rows,
        notes=notes,
    )
