"""Table II — removal-attack resilience via SCC statistics.

For every suite circuit and ``S ∈ {0, 10, 30}``: lock, run the SCC
clustering on the register connection graph, and report the number of
all-original (O), all-extra (E) and mixed (M) SCCs plus ``P_M``, the
percentage of registers inside M-SCCs. The paper's qualitative claims:

* ``S = 0`` — clean separation: many O- and E-SCCs, no M-SCC, P_M = 0;
* ``S = 10`` — E-SCCs essentially vanish, one M-SCC, P_M ≈ 90–100;
* ``S = 30`` — stronger still.
"""

from __future__ import annotations

from repro.api import SCHEMES
from repro.attacks import scc_report
from repro.bench.suite import load_suite_circuit, suite_names
from repro.campaign import Campaign, CellSpec
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
)

#: Paper Table II: circuit -> S -> (O, E, M, PM).
PAPER_TABLE2 = {
    "s9234": {0: (72, 79, 0, 0), 10: (12, 0, 1, 95.2), 30: (0, 0, 1, 100)},
    "s15850": {0: (203, 93, 0, 0), 10: (39, 0, 1, 94.0),
               30: (14, 0, 1, 97.9)},
    "s35932": {0: (18, 317, 0, 0), 10: (0, 0, 1, 100), 30: (0, 0, 1, 100)},
    "s38417": {0: (889, 198, 0, 0), 10: (36, 0, 1, 97.9),
               30: (20, 0, 1, 98.9)},
    "s38584": {0: (735, 79, 0, 0), 10: (30, 0, 1, 97.5), 30: (0, 0, 1, 100)},
    "b12": {0: (19, 37, 0, 0), 10: (0, 0, 1, 100), 30: (0, 0, 1, 100)},
    "b14": {0: (57, 226, 0, 0), 10: (45, 0, 1, 90.4), 30: (24, 0, 1, 95.1)},
    "b15": {0: (141, 254, 0, 0), 10: (91, 0, 1, 87.1), 30: (61, 0, 1, 91.8)},
    "b18": {0: (95, 261, 0, 0), 10: (53, 0, 1, 98.4), 30: (42, 0, 1, 98.7)},
    "b20": {0: (43, 226, 0, 0), 10: (31, 0, 1, 95.6), 30: (10, 0, 1, 98.6)},
}

S_VALUES = (0, 10, 30)


def scc_cell(circuit, scale, seed, kappa_s, kappa_f, alpha, s_pairs,
             include_trivial):
    """One Table II cell: lock (via the scheme registry) + SCC
    clustering statistics."""
    netlist = load_suite_circuit(circuit, scale=scale, seed=seed)
    locked = SCHEMES.get("trilock").lock(
        netlist, seed=seed, kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha,
        s_pairs=s_pairs)
    report = scc_report(locked, include_trivial=include_trivial)
    return {
        "O": report.o_sccs,
        "E": report.e_sccs,
        "M": report.m_sccs,
        "PM": report.pm_percent,
        "pairs_applied": len(locked.reencoded_pairs),
    }


def cells(scale=DEFAULT_SCALE, names=None, s_values=S_VALUES, kappa_s=3,
          kappa_f=1, alpha=0.6, seed=0, include_trivial=False):
    """One cell per (circuit, S)."""
    selected = names if names is not None else suite_names()
    return [
        CellSpec.make(
            "repro.experiments.table2_removal:scc_cell",
            {"circuit": name, "scale": scale, "seed": seed,
             "kappa_s": kappa_s, "kappa_f": kappa_f, "alpha": alpha,
             "s_pairs": s_pairs, "include_trivial": include_trivial},
            experiment="table2", label=f"table2/{name}/S={s_pairs}")
        for name in selected for s_pairs in s_values
    ]


def run(scale=DEFAULT_SCALE, names=None, s_values=S_VALUES, kappa_s=3,
        kappa_f=1, alpha=0.6, seed=0, include_trivial=False, campaign=None):
    campaign = campaign if campaign is not None else Campaign()
    specs = cells(scale=scale, names=names, s_values=s_values,
                  kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha, seed=seed,
                  include_trivial=include_trivial)
    values = campaign.values(specs)
    return assemble(values, scale=scale, names=names, s_values=s_values,
                    kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha)


def assemble(values, scale=DEFAULT_SCALE, names=None, s_values=S_VALUES,
             kappa_s=3, kappa_f=1, alpha=0.6):
    selected = names if names is not None else suite_names()
    rows = []
    for (name, s_pairs), cell in zip(
            ((n, s) for n in selected for s in s_values), values,
            strict=True):
        paper = PAPER_TABLE2[name][s_pairs]
        rows.append({
            "circuit": name,
            "S": s_pairs,
            "O": cell["O"],
            "E": cell["E"],
            "M": cell["M"],
            "PM": cell["PM"],
            "pairs_applied": cell["pairs_applied"],
            "paper_O/E/M/PM": "/".join(str(v) for v in paper),
        })

    def average_reduction(kind_index, s_pairs):
        base = {row["circuit"]: row for row in rows if row["S"] == 0}
        cur = [row for row in rows if row["S"] == s_pairs]
        reductions = []
        key = "O" if kind_index == 0 else "E"
        for row in cur:
            before = base[row["circuit"]][key]
            if before:
                reductions.append(1 - row[key] / before)
        return 100 * sum(reductions) / len(reductions) if reductions else 0.0

    notes = []
    for s_pairs in s_values:
        if s_pairs == 0:
            continue
        notes.append(
            f"S={s_pairs}: O-SCCs reduced {average_reduction(0, s_pairs):.1f}%"
            f", E-SCCs reduced {average_reduction(1, s_pairs):.1f}% on "
            "average (paper: 71.71%/100% at S=10, 83.80%/100% at S=30)")
    notes.append(
        "absolute SCC counts depend on circuit scale and the authors' "
        "unpublished FSM microarchitecture; the structure (S=0 separable, "
        "S>0 one dominant M-SCC with PM->100) is the reproduced claim")
    return ExperimentResult(
        experiment="table2",
        title="Removal-attack resilience of TriLock",
        parameters={"kappa_s": kappa_s, "kappa_f": kappa_f, "alpha": alpha,
                    "scale": scale},
        rows=rows,
        notes=notes,
    )
