"""Table I — SAT-attack resilience (``ndip`` and runtime).

Protocol, mirroring the paper's own:

* lock every suite circuit with ``κf = 1, α = 0.6, S = 10`` and
  ``κs ∈ {1, 2, 3}``;
* run the real sequential SAT attack (at ``b* = κs``, as the paper
  assumes via Fun-SAT's depth prediction) on the cells small enough to
  finish within the budget;
* extrapolate the remaining cells from Eq. (10) with a constant
  runtime-per-DIP ratio — exactly the paper's blue-entry methodology
  (they finished 4 of 30 cells under a two-day timeout; pure Python at
  reduced scale finishes a comparable subset).

``ndip`` itself is solver-independent, so measured cells must equal
``2^{κs·|I|}`` exactly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import format_spec, matrix_cells
from repro.bench.suite import TABLE1_CIRCUITS, suite_names
from repro.campaign import Campaign
from repro.core import ndip_trilock
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    engineering,
)
from repro.errors import ExtrapolationError
from repro.metrics import extrapolated_resilience
from repro.metrics.resilience import ResilienceMeasurement
from repro.sat import make_attack_solver, parse_portfolio

#: Paper Table I (κs -> circuit -> (ndip, seconds)); blue extrapolated
#: entries included — used by EXPERIMENTS.md for shape comparison.
PAPER_TABLE1 = {
    1: {"s9234": (524288, 3.9e6), "s15850": (8192, 105283),
        "s35932": (3.4e10, 2.6e11), "s38417": (2.7e8, 2.0e9),
        "s38584": (2048, 27394.0), "b12": (32, 55.44),
        "b14": (4.3e9, 3.2e10), "b15": (6.9e10, 5.1e11),
        "b18": (1.4e11, 1.0e12), "b20": (4.3e9, 3.2e10)},
    2: {"s9234": (2.7e11, 2.1e12), "s15850": (6.7e7, 5.0e8),
        "s35932": (1.2e21, 8.8e21), "s38417": (7.2e16, 5.4e17),
        "s38584": (4.2e6, 3.1e7), "b12": (1024, 1934.18),
        "b14": (1.8e19, 1.4e20), "b15": (4.7e21, 3.5e22),
        "b18": (1.9e22, 1.4e23), "b20": (1.8e19, 1.4e20)},
    3: {"s9234": (1.4e17, 1.1e18), "s15850": (5.5e11, 4.1e12),
        "s35932": (4.1e31, 3.0e32), "s38417": (1.9e25, 1.4e26),
        "s38584": (8.6e9, 6.4e10), "b12": (32768, 244449.28),
        "b14": (7.9e28, 5.9e29), "b15": (3.2e32, 2.4e33),
        "b18": (2.6e33, 1.9e34), "b20": (7.9e28, 5.9e29)},
}

#: Cells attacked for real, by effort level. The paper finished b12
#: (κs=1..3) and s38584 (κs=1); 'quick' runs the smallest, 'full' adds
#: the next tractable ones.
MEASURED_CELLS = {
    "quick": [("b12", 1)],
    "standard": [("b12", 1), ("b12", 2)],
    "full": [("b12", 1), ("b12", 2), ("s38584", 1)],
}


def measured_pairs(effort, kappa_s_values=(1, 2, 3)):
    """The (circuit, kappa_s) pairs attacked for real at this effort."""
    return [(name, kappa_s) for name, kappa_s in MEASURED_CELLS[effort]
            if kappa_s in kappa_s_values]


def cells(scale=DEFAULT_SCALE, effort="quick", kappa_s_values=(1, 2, 3),
          seed=0, time_budget_per_cell=None, dip_batch=1, portfolio=None,
          attack_jobs=1):
    """One matrix cell per attacked (circuit, kappa_s) of the effort
    level.

    The grid is built from :func:`repro.api.matrix_cells` (one generic
    ``circuit x scheme x attack`` cell per entry) instead of a
    hand-written cell list, so Table I cells share cache entries with
    any equivalent ``repro-lock matrix`` run.  The attack-engine knobs
    are normalized through :func:`repro.sat.parse_portfolio` before
    entering the attack spec, so equivalent spellings of the same
    portfolio (``None`` vs ``"default"`` vs ``"cdcl"``) address the
    same cached cell."""
    portfolio_names = list(parse_portfolio(portfolio))
    # Validate the engine combination eagerly (workers spawn lazily, so
    # this is cheap) — a misconfigured portfolio/jobs pair should fail
    # the experiment up front, not every cell one by one.
    probe = make_attack_solver(portfolio=portfolio, attack_jobs=attack_jobs)
    if hasattr(probe, "close"):
        probe.close()
    attack = format_spec("seq-sat", {
        "dip_batch": dip_batch, "portfolio": ",".join(portfolio_names),
        "attack_jobs": attack_jobs})
    specs = []
    for name, kappa_s in measured_pairs(effort, kappa_s_values):
        scheme = (f"trilock?kappa_s={kappa_s}&kappa_f=1&alpha=0.6"
                  f"&s_pairs=10")
        (spec,) = matrix_cells([name], [scheme], [attack], scale=scale,
                               seed=seed,
                               time_budget=time_budget_per_cell)
        specs.append(replace(spec, experiment="table1",
                             label=f"table1/{name}/ks={kappa_s}"))
    return specs


def run(scale=DEFAULT_SCALE, effort="quick", kappa_s_values=(1, 2, 3),
        seed=0, time_budget_per_cell=None, campaign=None, dip_batch=1,
        portfolio=None, attack_jobs=1):
    campaign = campaign if campaign is not None else Campaign()
    specs = cells(scale=scale, effort=effort, kappa_s_values=kappa_s_values,
                  seed=seed, time_budget_per_cell=time_budget_per_cell,
                  dip_batch=dip_batch, portfolio=portfolio,
                  attack_jobs=attack_jobs)
    results = campaign.run(specs)
    # A failed or timed-out attack cell degrades to extrapolation (the
    # paper's own protocol for unfinished cells) instead of aborting.
    measured, failed = [], []
    pairs = measured_pairs(effort, kappa_s_values)
    for (name, kappa_s), result in zip(pairs, results, strict=True):
        if not result.ok:
            failed.append(result.spec.describe())
            continue
        value = result.value
        metrics = value["metrics"]
        measured.append(ResilienceMeasurement(
            circuit=name, kappa_s=kappa_s,
            width=TABLE1_CIRCUITS[name][0],
            ndip=metrics["n_dips"], seconds=value["seconds"],
            measured=bool(value["success"]),
            attack_succeeded=bool(value["success"]),
            key_correct=bool(metrics["key_ok"])))
    return assemble(measured, scale=scale, effort=effort,
                    kappa_s_values=kappa_s_values, failed_cells=failed)


def assemble(measured, scale=DEFAULT_SCALE, effort="quick",
             kappa_s_values=(1, 2, 3), failed_cells=()):
    rows = []
    measured_keys = {(m.circuit, m.kappa_s) for m in measured}
    finished = [m for m in measured if m.measured]

    unextrapolatable = 0
    for name in suite_names():
        width = TABLE1_CIRCUITS[name][0]
        for kappa_s in kappa_s_values:
            expected = ndip_trilock(kappa_s, width)
            if (name, kappa_s) in measured_keys:
                cell = next(m for m in measured
                            if (m.circuit, m.kappa_s) == (name, kappa_s))
            else:
                try:
                    cell = extrapolated_resilience(name, kappa_s, width,
                                                   finished)
                except ExtrapolationError:
                    # No measured run to fit a time/DIP rate from:
                    # ndip is still exact (solver-independent), but the
                    # runtime column is explicitly unextrapolatable
                    # rather than a silent NaN.
                    unextrapolatable += 1
                    cell = None
            paper_ndip, paper_seconds = PAPER_TABLE1[kappa_s][name]
            rows.append({
                "circuit": name,
                "|I|": width,
                "kappa_s": kappa_s,
                "ndip": engineering(expected if cell is None else cell.ndip),
                "ndip==2^(ks|I|)": cell is None or cell.ndip == expected,
                "T(s)": "unextrapolatable" if cell is None
                        else engineering(cell.seconds),
                "measured": False if cell is None else cell.measured,
                "key_ok": cell.key_correct
                          if cell is not None and cell.measured else "",
                "paper_ndip": engineering(paper_ndip),
                "paper_T(s)": engineering(paper_seconds),
            })

    over_year = sum(1 for row in rows
                    if _seconds_of(row["T(s)"]) > 365 * 24 * 3600)
    notes = [
        f"measured cells: {sorted(measured_keys)} at scale={scale}; all "
        "others extrapolated from Eq. (10) with the worst observed "
        "time/DIP ratio (the paper's own protocol)",
        f"{100 * over_year / len(rows):.1f}% of cells extrapolate beyond "
        "one year of attack time (paper reports 76.6%)",
        "ndip values are solver-independent and match the paper exactly; "
        "absolute runtimes differ (pure-Python CDCL at reduced scale)",
    ]
    if failed_cells:
        notes.append(
            f"cells failed or timed out and fell back to extrapolation: "
            f"{sorted(failed_cells)}")
    if unextrapolatable:
        notes.append(
            f"{unextrapolatable} cells are unextrapolatable (no measured "
            "run finished to fit a time/DIP rate from)")
    return ExperimentResult(
        experiment="table1",
        title="SAT-attack resilience of TriLock",
        parameters={"kappa_f": 1, "alpha": 0.6, "S": 10, "scale": scale,
                    "effort": effort},
        rows=rows,
        notes=notes,
    )


def _seconds_of(text):
    try:
        return float(text)
    except ValueError:
        return 0.0
