"""Shared experiment plumbing: results and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default size scale of the synthetic suite for in-repo experiment runs
#: (the paper's full-size circuits are pure-Python-hostile; DESIGN.md §4).
DEFAULT_SCALE = 0.08


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment: str            # e.g. "table1"
    title: str
    parameters: dict
    rows: list                 # list of dicts, one per table row/series point
    notes: list = field(default_factory=list)

    def render(self):
        """Aligned plain-text table plus notes (the paper-artifact view)."""
        lines = [f"== {self.experiment}: {self.title} =="]
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        if params:
            lines.append(f"-- parameters: {params}")
        lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def format_table(rows, float_format="{:.3g}"):
    """Render a list of dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def fmt(value):
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max((len(line[i]) for line in table), default=0))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i])
                       for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    return "\n".join([header, separator] + body)


def engineering(value):
    """Format big numbers like the paper ('3.9e+06', '32768')."""
    if value != value:  # NaN: every attack cell failed, nothing to scale by
        return "n/a"
    if value >= 1e5:
        return f"{value:.1e}"
    if isinstance(value, float) and value != int(value):
        return f"{value:.2f}"
    return str(int(value))
