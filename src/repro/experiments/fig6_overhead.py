"""Fig. 6 — area/power/delay overhead of TriLock versus ``κs``.

Paper protocol: ``κf = 1, α = 0.6, S = 10``; ``κs = 1..5``; overhead is
the relative increase of the synthesised locked netlist over the
original. Expected shape: overhead grows with ``κs`` (the key store is
``κs·|I|`` registers), larger circuits pay relatively less, delay
overhead is the flattest of the three.
"""

from __future__ import annotations

from repro.api import SCHEMES, canonical_circuit_spec, load_circuit
from repro.bench.suite import suite_names
from repro.campaign import Campaign, CellSpec
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
)
from repro.metrics import locking_overhead

KAPPA_S_RANGE = (1, 2, 3, 4, 5)


def overhead_cell(circuit, seed, kappa_s, kappa_f, alpha, s_pairs):
    """One Fig. 6 point: load the circuit-provider spec, lock (via the
    scheme registry), and report ADP overhead."""
    netlist = load_circuit(circuit)
    locked = SCHEMES.get("trilock").lock(
        netlist, seed=seed, kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha,
        s_pairs=s_pairs)
    report = locking_overhead(locked)
    return {
        "area_ovh": report.area_overhead,
        "power_ovh": report.power_overhead,
        "delay_ovh": report.delay_overhead,
    }


def cells(scale=DEFAULT_SCALE, names=None, kappa_s_values=KAPPA_S_RANGE,
          kappa_f=1, alpha=0.6, s_pairs=10, seed=0):
    """One cell per (circuit, kappa_s); circuits enter as canonical
    provider specs (bare suite names accepted)."""
    selected = names if names is not None else suite_names()
    circuit_defaults = {"scale": scale, "seed": seed}
    return [
        CellSpec.make(
            "repro.experiments.fig6_overhead:overhead_cell",
            {"circuit": canonical_circuit_spec(name,
                                               defaults=circuit_defaults),
             "seed": seed,
             "kappa_s": kappa_s, "kappa_f": kappa_f, "alpha": alpha,
             "s_pairs": s_pairs},
            experiment="fig6", label=f"fig6/{name}/ks={kappa_s}")
        for name in selected for kappa_s in kappa_s_values
    ]


def run(scale=DEFAULT_SCALE, names=None, kappa_s_values=KAPPA_S_RANGE,
        kappa_f=1, alpha=0.6, s_pairs=10, seed=0, campaign=None):
    campaign = campaign if campaign is not None else Campaign()
    specs = cells(scale=scale, names=names, kappa_s_values=kappa_s_values,
                  kappa_f=kappa_f, alpha=alpha, s_pairs=s_pairs, seed=seed)
    values = campaign.values(specs)
    return assemble(values, scale=scale, names=names,
                    kappa_s_values=kappa_s_values, kappa_f=kappa_f,
                    alpha=alpha, s_pairs=s_pairs)


def assemble(values, scale=DEFAULT_SCALE, names=None,
             kappa_s_values=KAPPA_S_RANGE, kappa_f=1, alpha=0.6, s_pairs=10):
    selected = names if names is not None else suite_names()
    rows = []
    for (name, kappa_s), cell in zip(
            ((n, k) for n in selected for k in kappa_s_values), values,
            strict=True):
        rows.append({
            "circuit": name,
            "kappa_s": kappa_s,
            "area_ovh": cell["area_ovh"],
            "power_ovh": cell["power_ovh"],
            "delay_ovh": cell["delay_ovh"],
        })

    by_circuit = {}
    for row in rows:
        by_circuit.setdefault(row["circuit"], []).append(row)
    monotone = sum(
        1 for series in by_circuit.values()
        if series[-1]["area_ovh"] >= series[0]["area_ovh"]
    )
    under_40 = sum(
        1 for series in by_circuit.values()
        if all(r["area_ovh"] < 0.4 and r["power_ovh"] < 0.4
               and r["delay_ovh"] < 0.4 for r in series)
    )
    notes = [
        f"area overhead grows with kappa_s for {monotone}/"
        f"{len(by_circuit)} circuits",
        f"{under_40}/{len(by_circuit)} circuits stay under 40% in all "
        "ADP dimensions across kappa_s (paper: 6/10)",
        "overheads are relative (cell-model based); at reduced scale the "
        "fixed lock cost is amplified versus the paper's full-size "
        "circuits — shapes, not absolutes, are the claim",
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Area, power, delay overhead vs kappa_s",
        parameters={"kappa_f": kappa_f, "alpha": alpha, "S": s_pairs,
                    "scale": scale},
        rows=rows,
        notes=notes,
    )
