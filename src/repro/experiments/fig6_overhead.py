"""Fig. 6 — area/power/delay overhead of TriLock versus ``κs``.

Paper protocol: ``κf = 1, α = 0.6, S = 10``; ``κs = 1..5``; overhead is
the relative increase of the synthesised locked netlist over the
original. Expected shape: overhead grows with ``κs`` (the key store is
``κs·|I|`` registers), larger circuits pay relatively less, delay
overhead is the flattest of the three.
"""

from __future__ import annotations

from repro.core import TriLockConfig, lock
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentResult,
    suite_circuits,
)
from repro.metrics import locking_overhead

KAPPA_S_RANGE = (1, 2, 3, 4, 5)


def run(scale=DEFAULT_SCALE, names=None, kappa_s_values=KAPPA_S_RANGE,
        kappa_f=1, alpha=0.6, s_pairs=10, seed=0):
    circuits = suite_circuits(scale=scale, names=names, seed=seed)
    rows = []
    for name, netlist in circuits:
        for kappa_s in kappa_s_values:
            locked = lock(netlist, TriLockConfig(
                kappa_s=kappa_s, kappa_f=kappa_f, alpha=alpha,
                s_pairs=s_pairs, seed=seed))
            report = locking_overhead(locked)
            rows.append({
                "circuit": name,
                "kappa_s": kappa_s,
                "area_ovh": report.area_overhead,
                "power_ovh": report.power_overhead,
                "delay_ovh": report.delay_overhead,
            })

    by_circuit = {}
    for row in rows:
        by_circuit.setdefault(row["circuit"], []).append(row)
    monotone = sum(
        1 for series in by_circuit.values()
        if series[-1]["area_ovh"] >= series[0]["area_ovh"]
    )
    under_40 = sum(
        1 for series in by_circuit.values()
        if all(r["area_ovh"] < 0.4 and r["power_ovh"] < 0.4
               and r["delay_ovh"] < 0.4 for r in series)
    )
    notes = [
        f"area overhead grows with kappa_s for {monotone}/"
        f"{len(by_circuit)} circuits",
        f"{under_40}/{len(by_circuit)} circuits stay under 40% in all "
        "ADP dimensions across kappa_s (paper: 6/10)",
        "overheads are relative (cell-model based); at reduced scale the "
        "fixed lock cost is amplified versus the paper's full-size "
        "circuits — shapes, not absolutes, are the claim",
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Area, power, delay overhead vs kappa_s",
        parameters={"kappa_f": kappa_f, "alpha": alpha, "S": s_pairs,
                    "scale": scale},
        rows=rows,
        notes=notes,
    )
