"""``repro-lock`` — command-line locking flow over ``.bench`` files.

Lock (flags or a scheme spec string — any registered scheme works)::

    repro-lock lock design.bench --kappa-s 3 --alpha 0.6 --s-pairs 10 \
        --out locked.bench --key-out design.key
    repro-lock lock design.bench --scheme "harpoon?kappa=3" \
        --out locked.bench --key-out design.key

Verify a locked design against the original under its key::

    repro-lock verify design.bench locked.bench design.key

Attack a locked design (oracle = the original netlist; ``--key`` recovers
``kappa`` and the starting depth from the key file so they need not be
re-typed)::

    repro-lock attack design.bench locked.bench --key design.key
    repro-lock attack design.bench locked.bench --kappa 4

Report security/cost metrics::

    repro-lock report design.bench locked.bench design.key

Discover the plugin registries and run a circuit x scheme x attack
matrix (circuits are provider specs — bare benchmark names, suite
circuits with a scale, or fully parametric ``synth`` families)::

    repro-lock circuits
    repro-lock schemes
    repro-lock attacks
    repro-lock matrix --circuit s27 \
        --circuit "synth?gates=200&ffs=8" \
        --scheme "trilock?kappa_s=1..2" --scheme sarlock \
        --attack seq-sat --attack removal --jobs 4

Fit attack-cost scaling laws over synthetic circuit size (writes
``benchmarks/artifacts/BENCH_scaling.json``)::

    repro-lock scaling --gates "150|400|1100" --scheme trilock \
        --scheme sarlock --max-dips 256

Scale a matrix out over distributed workers (start any number of
workers, on this or other hosts; the scheduler requeues the cells of a
worker that dies)::

    repro-lock matrix ... --backend distributed --bind 0.0.0.0:7764 \
        --workers 2
    repro-lock worker --connect scheduler-host:7764 --cores 8

Run the campaign service daemon and talk to it (the async job API —
many tenants, one worker fleet, one shared result cache)::

    repro-lock serve --http 127.0.0.1:8765 --bind 0.0.0.0:7764 \
        --local-workers 2
    repro-lock submit --scheme trilock --attack seq-sat --tenant alice \
        --wait
    repro-lock status            # all campaigns
    repro-lock status c0001-abcd # per-cell state
    repro-lock results c0001-abcd
    repro-lock cancel c0001-abcd

Inspect or clear the experiment-campaign result cache::

    repro-lock campaign status
    repro-lock campaign clear --cache-dir /tmp/cells
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro._cliutils import add_backend_arguments, attack_jobs_arg, \
    make_executor_backend
from repro.api import ATTACKS, CIRCUITS, SCHEMES, circuit_label, \
    expand_grid, matrix_cells, parse_spec
from repro.api.spec import format_spec
from repro.attacks import bounded_equivalence, scc_report, sequential_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.campaign import Campaign, ResultStore, default_cache_dir, \
    render_status
from repro.campaign.service import DEFAULT_HTTP_BIND, ServiceClient
from repro.core import KeySequence, TriLockConfig
from repro.core.locker import LockedCircuit
from repro.errors import ReproError
from repro.experiments.common import format_table
from repro.metrics import simulate_fc
from repro.netlist import dump_bench, load_bench
from repro.tech import overhead

#: Key-file formats this CLI reads; v2 added the scheme spec string.
_KEY_FORMATS = ("trilock-key-v1", "trilock-key-v2")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-lock",
        description="Sequential logic locking over .bench files "
                    "(TriLock and the registered baseline schemes).")
    commands = parser.add_subparsers(dest="command", required=True)

    lock_cmd = commands.add_parser("lock", help="lock a .bench netlist")
    lock_cmd.add_argument("design", help="original .bench file")
    lock_cmd.add_argument("--scheme", default=None,
                          help="scheme spec string (e.g. "
                               "\"trilock?kappa_s=3&alpha=0.5\"); "
                               "excludes the individual TriLock flags")
    lock_cmd.add_argument("--kappa-s", type=int, default=None)
    lock_cmd.add_argument("--kappa-f", type=int, default=None)
    lock_cmd.add_argument("--alpha", type=float, default=None)
    lock_cmd.add_argument("--s-pairs", type=int, default=None)
    lock_cmd.add_argument("--seed", type=int, default=0)
    lock_cmd.add_argument("--out", required=True,
                          help="locked .bench output path")
    lock_cmd.add_argument("--key-out", required=True,
                          help="key file output path (JSON)")

    verify_cmd = commands.add_parser(
        "verify", help="BMC-check locked(key) against the original")
    verify_cmd.add_argument("design")
    verify_cmd.add_argument("locked")
    verify_cmd.add_argument("key", help="key file written by 'lock'")
    verify_cmd.add_argument("--depth", type=int, default=None,
                            help="compared window (default: recovered "
                                 "from the key file's scheme spec, "
                                 "else 8)")

    attack_cmd = commands.add_parser(
        "attack", help="run the sequential SAT attack")
    attack_cmd.add_argument("design", help="oracle netlist (.bench)")
    attack_cmd.add_argument("locked")
    attack_cmd.add_argument("--kappa", type=int, default=None,
                            help="key cycle length (or pass --key)")
    attack_cmd.add_argument("--key", default=None,
                            help="key file written by 'lock': recovers "
                                 "kappa and the starting depth from its "
                                 "scheme spec")
    attack_cmd.add_argument("--depth", type=int, default=None,
                            help="unrolling depth b* (omit to deepen, "
                                 "or recover b* = kappa_s via --key)")
    attack_cmd.add_argument("--max-dips", type=int, default=None)
    attack_cmd.add_argument("--time-budget", type=float, default=None)
    attack_cmd.add_argument("--dip-batch", type=int, default=1,
                            help="DIPs extracted and pinned per miter "
                                 "round (default 1 = classic loop)")
    attack_cmd.add_argument("--attack-jobs", type=attack_jobs_arg,
                            default=1,
                            help="worker processes racing solver configs: "
                                 "an int (default 1 = serial single "
                                 "solver) or 'auto' (one per config, "
                                 "clamped to the CPU budget)")
    attack_cmd.add_argument("--portfolio", default=None,
                            help="solver portfolio: 'default', 'race', "
                                 "'race2', 'all', or comma-separated "
                                 "backend names")

    report_cmd = commands.add_parser(
        "report", help="security and cost report of a locked design")
    report_cmd.add_argument("design")
    report_cmd.add_argument("locked")
    report_cmd.add_argument("key")
    report_cmd.add_argument("--fc-depth", type=int, default=4)
    report_cmd.add_argument("--fc-samples", type=int, default=800)

    for kind, text in (
            ("circuits", "list the registered circuit providers"),
            ("schemes", "list the registered locking schemes"),
            ("attacks", "list the registered attacks")):
        listing_cmd = commands.add_parser(kind, help=text)
        listing_cmd.add_argument(
            "--json", action="store_true",
            help="machine-readable listing: name, description, and the "
                 "full parameter schema with defaults")

    matrix_cmd = commands.add_parser(
        "matrix", help="run a circuit x scheme x attack grid through "
                       "the campaign executor")
    matrix_cmd.add_argument("--circuit", action="append", default=None,
                            help="circuit provider spec, may be gridded "
                                 "(bare benchmark names, "
                                 "\"suite:b12?scale=0.1\", "
                                 "\"synth?gates=200&ffs=8\"); repeatable; "
                                 "default s27")
    matrix_cmd.add_argument("--scheme", action="append", required=True,
                            help="scheme spec, may be gridded "
                                 "(kappa_s=1..3, alpha=0.3|0.6); "
                                 "repeatable")
    matrix_cmd.add_argument("--attack", action="append", required=True,
                            help="attack spec, may be gridded; repeatable")
    matrix_cmd.add_argument("--scale", type=float, default=1.0,
                            help="suite circuit size scale (embedded "
                                 "circuits ignore it)")
    matrix_cmd.add_argument("--seed", type=int, default=0)
    matrix_cmd.add_argument("--max-dips", type=int, default=None,
                            help="per-cell DIP budget")
    matrix_cmd.add_argument("--time-budget", type=float, default=None,
                            help="per-cell attack time budget (seconds)")
    matrix_cmd.add_argument("--jobs", type=int, default=1,
                            help="worker processes for independent cells")
    matrix_cmd.add_argument("--cache-dir", default=None,
                            help="campaign result cache (default "
                                 "$REPRO_CACHE_DIR or .repro-cache)")
    matrix_cmd.add_argument("--no-cache", action="store_true",
                            help="recompute every cell")
    matrix_cmd.add_argument("--cell-timeout", type=float, default=None,
                            help="seconds one cell may run; enforced by "
                                 "the pool (--jobs >= 2) and distributed "
                                 "backends only — the inline backend "
                                 "cannot interrupt a cell and warns")
    add_backend_arguments(matrix_cmd)

    scaling_cmd = commands.add_parser(
        "scaling", help="sweep synth circuit size per scheme, attack "
                        "every point, and fit attack-cost power laws")
    scaling_cmd.add_argument("--scheme", action="append", default=None,
                             help="scheme spec, may be gridded; repeatable "
                                  "(default: trilock?kappa_s=1&s_pairs=4, "
                                  "sarlock, sublock)")
    scaling_cmd.add_argument("--attack", default=None,
                             help="attack spec every point runs "
                                  "(default seq-sat)")
    scaling_cmd.add_argument("--gates", default="150|400|1100",
                             help="gate-count sweep as grid syntax "
                                  "('150|400|1100' or '100..104'; "
                                  "default %(default)s)")
    scaling_cmd.add_argument("--ffs", type=int, default=12,
                             help="flop count, fixed across the sweep "
                                  "(default %(default)s)")
    scaling_cmd.add_argument("--pis", type=int, default=6,
                             help="primary inputs — the interface width "
                                  "|I| every scheme keys on; fixed so "
                                  "ndip isolates from circuit size "
                                  "(default %(default)s)")
    scaling_cmd.add_argument("--pos", type=int, default=6,
                             help="primary outputs (default %(default)s)")
    scaling_cmd.add_argument("--seed", type=int, default=0)
    scaling_cmd.add_argument("--max-dips", type=int, default=256,
                             help="per-cell DIP budget "
                                  "(default %(default)s)")
    scaling_cmd.add_argument("--time-budget", type=float, default=None,
                             help="per-cell attack time budget (seconds)")
    scaling_cmd.add_argument("--jobs", type=int, default=1,
                             help="worker processes for independent cells")
    scaling_cmd.add_argument("--cache-dir", default=None,
                             help="campaign result cache (default "
                                  "$REPRO_CACHE_DIR or .repro-cache)")
    scaling_cmd.add_argument("--no-cache", action="store_true",
                             help="recompute every cell")
    scaling_cmd.add_argument("--cell-timeout", type=float, default=None,
                             help="seconds one cell may run; enforced by "
                                  "the pool (--jobs >= 2) and distributed "
                                  "backends only")
    scaling_cmd.add_argument("--artifact",
                             default=os.path.join("benchmarks", "artifacts",
                                                  "BENCH_scaling.json"),
                             help="JSON report path (default %(default)s)")
    scaling_cmd.add_argument("--no-artifact", action="store_true",
                             help="print the fitted report only; write "
                                  "nothing")
    add_backend_arguments(scaling_cmd)

    worker_cmd = commands.add_parser(
        "worker", help="join a distributed campaign scheduler and "
                       "execute cells")
    worker_cmd.add_argument("--connect", required=True, metavar="HOST:PORT",
                            help="scheduler address (the matrix/experiment "
                                 "run's --bind)")
    worker_cmd.add_argument("--cores", type=int, default=None,
                            help="capacity to advertise (default: this "
                                 "host's CPU affinity count); the "
                                 "scheduler never places cells whose "
                                 "summed widths exceed it")
    worker_cmd.add_argument("--name", default=None,
                            help="worker name in scheduler logs "
                                 "(default host:pid)")
    worker_cmd.add_argument("--retry-for", type=float, default=10.0,
                            help="seconds to retry the initial connect, "
                                 "so workers may start before the "
                                 "scheduler (default %(default)s)")
    worker_cmd.add_argument("--secret", default=None, metavar="SECRET",
                            help="shared fleet secret (default "
                                 "$REPRO_SECRET); must match the "
                                 "scheduler's")
    worker_cmd.add_argument("--shard-dir", default=None, metavar="DIR",
                            help="local read-through cache shard: answer "
                                 "key-only cell probes from DIR and "
                                 "populate it with every result (default "
                                 "$REPRO_WORKER_SHARD; unset = no shard)")

    serve_cmd = commands.add_parser(
        "serve", help="run the long-lived campaign service daemon "
                      "(async job API over HTTP + a worker fleet)")
    serve_cmd.add_argument("--http", default=DEFAULT_HTTP_BIND,
                           metavar="HOST:PORT",
                           help="HTTP API bind (default %(default)s; "
                                "port 0 picks a free port)")
    serve_cmd.add_argument("--bind", default="127.0.0.1:0",
                           metavar="HOST:PORT",
                           help="scheduler endpoint workers connect to "
                                "(default %(default)s — an ephemeral "
                                "port, printed at startup)")
    serve_cmd.add_argument("--cache-dir", default=None,
                           help="shared result cache all tenants hit "
                                "(default $REPRO_CACHE_DIR or "
                                ".repro-cache)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="serve without a shared result store")
    serve_cmd.add_argument("--cell-timeout", type=float, default=None,
                           help="seconds one cell may run on a worker")
    serve_cmd.add_argument("--local-workers", type=int, default=0,
                           metavar="N",
                           help="worker agents to spawn on this host "
                                "(remote workers join with "
                                "'repro-lock worker --connect')")
    serve_cmd.add_argument("--worker-cores", type=int, default=None,
                           help="cores each local worker advertises")
    serve_cmd.add_argument("--min-workers", type=int, default=1,
                           help="hold dispatch until this many workers "
                                "registered (default %(default)s)")
    serve_cmd.add_argument("--heartbeat-timeout", type=float, default=None,
                           help="seconds of silence before a worker is "
                                "declared dead")
    serve_cmd.add_argument("--secret", default=None, metavar="SECRET",
                           help="shared fleet secret: authenticates every "
                                "scheduler/worker frame and doubles as "
                                "the HTTP API bearer token (default "
                                "$REPRO_SECRET; unset = open)")

    submit_cmd = commands.add_parser(
        "submit", help="submit a scheme x attack matrix to a serve "
                       "daemon")
    submit_cmd.add_argument("--server", default=None, metavar="HOST:PORT",
                            help="service endpoint (default $REPRO_SERVER "
                                 "or 127.0.0.1:8765)")
    submit_cmd.add_argument("--secret", default=None, metavar="SECRET",
                            help="API bearer token (default $REPRO_SECRET)")
    submit_cmd.add_argument("--tenant", default="default",
                            help="fair-share accounting bucket")
    submit_cmd.add_argument("--priority", type=int, default=0,
                            help="within-tenant priority (higher wins)")
    submit_cmd.add_argument("--circuit", action="append", default=None,
                            help="circuit provider spec, may be gridded "
                                 "(repeatable; default s27)")
    submit_cmd.add_argument("--scheme", action="append", required=True,
                            help="scheme spec, may be gridded; repeatable")
    submit_cmd.add_argument("--attack", action="append", required=True,
                            help="attack spec, may be gridded; repeatable")
    submit_cmd.add_argument("--scale", type=float, default=1.0)
    submit_cmd.add_argument("--seed", type=int, default=0)
    submit_cmd.add_argument("--max-dips", type=int, default=None)
    submit_cmd.add_argument("--time-budget", type=float, default=None)
    submit_cmd.add_argument("--wait", action="store_true",
                            help="poll until the campaign finishes")
    submit_cmd.add_argument("--poll", type=float, default=0.5,
                            help="--wait poll interval in seconds")

    status_cmd = commands.add_parser(
        "status", help="campaign states on a serve daemon")
    status_cmd.add_argument("id", nargs="?", default=None,
                            help="campaign id (omit to list all)")
    status_cmd.add_argument("--server", default=None, metavar="HOST:PORT")
    status_cmd.add_argument("--secret", default=None, metavar="SECRET",
                            help="API bearer token (default $REPRO_SECRET)")
    status_cmd.add_argument("--json", action="store_true")

    results_cmd = commands.add_parser(
        "results", help="stream a campaign's completed cell values "
                        "(newline-delimited JSON)")
    results_cmd.add_argument("id", help="campaign id")
    results_cmd.add_argument("--server", default=None, metavar="HOST:PORT")
    results_cmd.add_argument("--secret", default=None, metavar="SECRET",
                             help="API bearer token (default $REPRO_SECRET)")

    cancel_cmd = commands.add_parser(
        "cancel", help="cancel a campaign on a serve daemon")
    cancel_cmd.add_argument("id", help="campaign id")
    cancel_cmd.add_argument("--server", default=None, metavar="HOST:PORT")
    cancel_cmd.add_argument("--secret", default=None, metavar="SECRET",
                            help="API bearer token (default $REPRO_SECRET)")

    campaign_cmd = commands.add_parser(
        "campaign", help="inspect the experiment-campaign result cache")
    campaign_sub = campaign_cmd.add_subparsers(dest="action", required=True)
    for action, text in (
            ("status", "summarise cached cells"),
            ("clear", "delete every cached cell"),
            ("compact", "pack loose cached cells into an append-only "
                        "pack file (fewer inodes, same lookups)")):
        action_cmd = campaign_sub.add_parser(action, help=text)
        action_cmd.add_argument(
            "--cache-dir", default=None,
            help="cache directory (default $REPRO_CACHE_DIR or "
                 ".repro-cache)")
    return parser


def _write_key_file(path, locked, scheme_spec):
    payload = {
        "format": "trilock-key-v2",
        "scheme": scheme_spec,
        "width": locked.key.width,
        "cycles": locked.key.cycles,
        "key": str(locked.key),
        "key_int": locked.key.as_int,
        "kappa_s": locked.config.kappa_s,
        "kappa_f": locked.config.kappa_f,
        "alpha": locked.config.alpha,
        "original_registers": list(locked.original_registers),
        "extra_registers": list(locked.extra_registers),
        "encoded_registers": list(locked.encoded_registers),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _read_key_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") not in _KEY_FORMATS:
        raise ReproError(f"{path} is not a trilock key file")
    return payload


def _key_from_payload(payload):
    return KeySequence.from_int(
        payload["key_int"], payload["cycles"], payload["width"])


def _payload_kappa_s(payload):
    """``kappa_s`` recovered from the key file (scheme spec preferred)."""
    scheme = payload.get("scheme")
    if scheme:
        _, params = parse_spec(scheme)
        if "kappa_s" in params:
            return params["kappa_s"]
        if "kappa" in params:
            return params["kappa"]
    return payload.get("kappa_s")


def _scheme_spec_from_args(args):
    """The lock command's scheme spec: explicit, or built from flags."""
    flags = {"kappa_s": args.kappa_s, "kappa_f": args.kappa_f,
             "alpha": args.alpha, "s_pairs": args.s_pairs}
    if args.scheme is not None:
        given = [f"--{name.replace('_', '-')}"
                 for name, value in flags.items() if value is not None]
        if given:
            raise ReproError(
                f"--scheme excludes the TriLock flags ({', '.join(given)}); "
                "fold them into the spec string instead")
        return args.scheme
    defaults = {"kappa_s": 2, "kappa_f": 1, "alpha": 0.6, "s_pairs": 10}
    params = {name: value if value is not None else defaults[name]
              for name, value in flags.items()}
    return format_spec("trilock", params)


def cmd_lock(args, out):
    original = load_bench(args.design)
    spec_text = _scheme_spec_from_args(args)
    name, params = parse_spec(spec_text)
    scheme = SCHEMES.get(name)
    resolved = scheme.resolve_params(params)
    locked = scheme.lock(original, seed=args.seed, **resolved)
    canonical = scheme.spec(**resolved)
    dump_bench(locked.netlist, args.out)
    _write_key_file(args.key_out, locked, canonical)
    stats = locked.netlist.stats()
    out.write(f"locked {args.design} "
              f"[{scheme.short_spec(**resolved)}]: {stats['flops']} FFs, "
              f"{stats['gates']} gates -> {args.out}\n")
    out.write(f"key ({locked.key.cycles} cycles x {locked.width} bits) "
              f"-> {args.key_out}\n")
    out.write(f"re-encoded pairs: {len(locked.reencoded_pairs)}\n")
    return 0


def cmd_verify(args, out):
    original = load_bench(args.design)
    locked = load_bench(args.locked)
    payload = _read_key_file(args.key)
    key = _key_from_payload(payload)
    depth = args.depth
    if depth is None:
        kappa_s = _payload_kappa_s(payload)
        depth = payload["cycles"] + kappa_s + 4 if kappa_s else 8
    result = bounded_equivalence(
        original, locked, depth=depth,
        prefix_vectors=list(key.vectors))
    if result.equivalent:
        out.write(f"PASS: locked(key) == original for {depth} cycles\n")
        return 0
    out.write("FAIL: counterexample input sequence:\n")
    for cycle, vector in enumerate(result.counterexample):
        bits = "".join("1" if b else "0" for b in vector)
        out.write(f"  cycle {cycle}: {bits}\n")
    return 1


def cmd_attack(args, out):
    original = load_bench(args.design)
    locked = load_bench(args.locked)
    kappa, depth = args.kappa, args.depth
    if args.key is not None:
        payload = _read_key_file(args.key)
        if kappa is not None and kappa != payload["cycles"]:
            raise ReproError(
                f"--kappa {kappa} contradicts the key file "
                f"({payload['cycles']} cycles); drop one of the two — a "
                "mismatched kappa silently attacks the wrong window")
        kappa = payload["cycles"]
        if depth is None:
            depth = _payload_kappa_s(payload)  # the paper's b* = kappa_s
    if kappa is None:
        raise ReproError(
            "attack needs the key cycle length: pass --kappa N or "
            "--key design.key to recover it")
    oracle = SimulationOracle(original)
    result = sequential_sat_attack(
        locked, kappa, oracle, known_depth=depth,
        max_dips=args.max_dips, time_budget=args.time_budget,
        reference=original, dip_batch=args.dip_batch,
        portfolio=args.portfolio, attack_jobs=args.attack_jobs)
    phases = (f"phases: solve {result.solve_seconds:.2f}s, "
              f"oracle {result.oracle_seconds:.2f}s "
              f"({result.oracle_queries} patterns / "
              f"{result.oracle_calls} calls), "
              f"encode {result.encode_seconds:.2f}s\n")
    if result.success:
        out.write(f"key recovered in {result.n_dips} DIPs "
                  f"({result.seconds:.2f}s, depth {result.depth}): "
                  f"{result.key}\n")
        out.write(phases)
        return 0
    out.write(f"attack stopped: {result.stop_reason} after "
              f"{result.n_dips} DIPs ({result.seconds:.2f}s)\n")
    out.write(phases)
    return 1


def cmd_report(args, out):
    original = load_bench(args.design)
    locked_netlist = load_bench(args.locked)
    payload = _read_key_file(args.key)
    key = _key_from_payload(payload)

    config = TriLockConfig(
        kappa_s=payload["kappa_s"], kappa_f=payload["kappa_f"],
        alpha=payload["alpha"])
    locked = LockedCircuit(
        netlist=locked_netlist,
        original=original,
        config=config,
        key=key,
        spec=None,
        error_net="",
        original_registers=tuple(payload["original_registers"]),
        extra_registers=tuple(payload["extra_registers"]),
        encoded_registers=tuple(payload.get("encoded_registers", ())),
    )
    if payload.get("scheme"):
        out.write(f"scheme: {payload['scheme']}\n")
    fc = simulate_fc(locked, depth=args.fc_depth,
                     n_samples=args.fc_samples)
    sccs = scc_report(locked)
    adp = overhead(original, locked_netlist)
    ndip = 2 ** (payload["kappa_s"] * payload["width"])
    out.write(f"SAT resilience: ndip = 2^(kappa_s*|I|) = {ndip:.3e}\n")
    out.write(f"functional corruptibility (depth {args.fc_depth}, "
              f"{args.fc_samples} samples): {fc:.3f}\n")
    out.write(f"removal resilience: O={sccs.o_sccs} E={sccs.e_sccs} "
              f"M={sccs.m_sccs} PM={sccs.pm_percent:.1f}%\n")
    out.write(f"overhead: area {adp.area_overhead:+.1%}, "
              f"power {adp.power_overhead:+.1%}, "
              f"delay {adp.delay_overhead:+.1%}\n")
    return 0


def cmd_circuits(args, out):
    return _list_registry(CIRCUITS, out, as_json=args.json)


def cmd_schemes(args, out):
    return _list_registry(SCHEMES, out, as_json=args.json)


def cmd_attacks(args, out):
    return _list_registry(ATTACKS, out, as_json=args.json)


def _list_registry(registry, out, as_json=False):
    if as_json:
        out.write(json.dumps([plugin.describe_json()
                              for plugin in registry], indent=2) + "\n")
        return 0
    rows = [
        {"name": name, "description": description, "parameters": schema}
        for name, description, schema in
        (plugin.describe_row() for plugin in registry)
    ]
    out.write(format_table(rows) + "\n")
    return 0


def _short_spec(registry, text):
    """Display form of a canonical spec: parameters at defaults omitted."""
    name, params = parse_spec(text)
    plugin = registry.get(name)
    return plugin.short_spec(**plugin.resolve_params(params))


def _summarise_metrics(value):
    """Compact ``k=v`` rendering of a matrix cell's headline metrics."""
    metrics = value.get("metrics", {})
    parts = []
    for key in sorted(metrics):
        number = metrics[key]
        if isinstance(number, float):
            number = f"{number:.3g}"
        parts.append(f"{key}={number}")
    return " ".join(parts)


def cmd_matrix(args, out):
    circuits = args.circuit if args.circuit else ["s27"]
    specs = matrix_cells(circuits, args.scheme, args.attack,
                         scale=args.scale, seed=args.seed,
                         max_dips=args.max_dips,
                         time_budget=args.time_budget)
    store = None if args.no_cache else ResultStore(
        args.cache_dir if args.cache_dir else default_cache_dir())
    campaign = Campaign(jobs=args.jobs, store=store,
                        cell_timeout=args.cell_timeout,
                        backend=make_executor_backend(args, sys.stderr))
    results = campaign.run(specs)
    rows = []
    for result in results:
        params = result.spec.kwargs()
        row = {
            "circuit": circuit_label(params["circuit"]),
            "scheme": _short_spec(SCHEMES, params["scheme"]),
            "attack": _short_spec(ATTACKS, params["attack"]),
            "status": result.status,
        }
        if result.ok:
            row["success"] = result.value["success"]
            row["T(s)"] = result.value["seconds"]
            row["metrics"] = _summarise_metrics(result.value)
        else:
            row["success"] = ""
            row["T(s)"] = result.elapsed
            row["metrics"] = (f"{result.error['type']}: "
                              f"{result.error['message']}")
        rows.append(row)
    out.write(format_table(rows) + "\n")
    stats = campaign.stats()
    if stats is not None:
        out.write(f"[cache: {stats.summary()}]\n")
    return 0 if all(result.ok for result in results) else 1


def _parse_sizes(text):
    """``--gates`` grid syntax -> positive gate counts, via the same
    expansion spec parameters use."""
    sizes = []
    for spec in expand_grid(f"synth?gates={text}"):
        _, params = parse_spec(spec)
        value = params["gates"]
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 1:
            raise ReproError(
                f"--gates wants positive integers, got {value!r}")
        sizes.append(value)
    return sizes


def cmd_scaling(args, out):
    from repro.experiments import scaling

    sizes = _parse_sizes(args.gates)
    schemes = args.scheme if args.scheme else list(scaling.DEFAULT_SCHEMES)
    attack = args.attack if args.attack else scaling.DEFAULT_ATTACK
    store = None if args.no_cache else ResultStore(
        args.cache_dir if args.cache_dir else default_cache_dir())
    campaign = Campaign(jobs=args.jobs, store=store,
                        cell_timeout=args.cell_timeout,
                        backend=make_executor_backend(args, sys.stderr))
    artifact = None if args.no_artifact else args.artifact
    result = scaling.run(
        sizes=sizes, schemes=schemes, attack=attack, ffs=args.ffs,
        pis=args.pis, pos=args.pos, seed=args.seed,
        max_dips=args.max_dips, time_budget=args.time_budget,
        campaign=campaign, artifact_path=artifact)
    out.write(result.render() + "\n")
    if artifact:
        out.write(f"[artifact: {artifact}]\n")
    stats = campaign.stats()
    if stats is not None:
        out.write(f"[cache: {stats.summary()}]\n")
    return 0 if all(row["T(s)"] != "failed" for row in result.rows) else 1


def cmd_worker(args, out):
    from repro.campaign.worker import run_worker

    try:
        return run_worker(args.connect, cores=args.cores, name=args.name,
                          retry_for=args.retry_for, out=out,
                          secret=args.secret, shard_dir=args.shard_dir)
    except OSError as error:
        raise ReproError(
            f"cannot reach scheduler at {args.connect}: {error} "
            "(is the matrix/experiment run with --backend distributed "
            "up, and --bind reachable from here?)")


def cmd_serve(args, out):
    import signal
    import subprocess

    from repro.campaign.service import CampaignService, ServiceHTTPServer

    store = None if args.no_cache else ResultStore(
        args.cache_dir if args.cache_dir else default_cache_dir())

    def event(message):
        sys.stderr.write(f"[serve] {message}\n")

    kwargs = {}
    if args.heartbeat_timeout is not None:
        kwargs["heartbeat_timeout"] = args.heartbeat_timeout
    service = CampaignService(
        store=store, scheduler_bind=args.bind,
        min_workers=args.min_workers, cell_timeout=args.cell_timeout,
        on_event=event, secret=args.secret, **kwargs)
    service.start()
    from repro.campaign.wire import format_address

    host, port = service.scheduler_address
    connect = format_address((host, port))
    workers = []
    for _ in range(args.local_workers):
        command = [sys.executable, "-m", "repro.cli", "worker",
                   "--connect", connect]
        if args.worker_cores:
            command += ["--cores", str(args.worker_cores)]
        # The secret travels by environment, not argv — `ps` must not
        # leak it on a shared host.
        env = dict(os.environ)
        if service.secret:
            env["REPRO_SECRET"] = service.secret
        workers.append(subprocess.Popen(command, env=env))
    httpd = ServiceHTTPServer(args.http, service, token=service.secret)
    out.write(f"campaign service: http://{format_address(httpd.address)} "
              f"(scheduler {connect}, cache "
              f"{store.cache_dir if store else 'off'}, "
              f"{'secured, ' if service.secret else ''}"
              f"{len(workers)} local workers)\n")
    out.flush()

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        httpd.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        service.close()
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
    out.write("campaign service stopped\n")
    return 0


def _counts_line(counts):
    return " ".join(f"{state}={counts[state]}"
                    for state in sorted(counts)) or "(empty)"


def cmd_submit(args, out):
    client = ServiceClient(args.server, secret=args.secret)
    request = {
        "tenant": args.tenant,
        "priority": args.priority,
        "circuits": args.circuit if args.circuit else ["s27"],
        "schemes": args.scheme,
        "attacks": args.attack,
        "scale": args.scale,
        "seed": args.seed,
        "max_dips": args.max_dips,
        "time_budget": args.time_budget,
    }
    summary = client.submit(request)
    out.write(f"campaign {summary['id']} (tenant {summary['tenant']}): "
              f"{summary['cells']} cells, {summary['shipped']} shipped, "
              f"{summary['counts'].get('hit', 0)} warm hits\n")
    if not args.wait:
        return 0
    detail = client.wait(summary["id"], poll=args.poll)
    counts = detail["counts"]
    out.write(f"campaign {summary['id']} {detail['status']}: "
              f"{_counts_line(counts)}\n")
    clean = detail["status"] == "done" and not any(
        counts.get(state) for state in ("failed", "timeout", "cancelled"))
    return 0 if clean else 1


def cmd_status(args, out):
    client = ServiceClient(args.server, secret=args.secret)
    if args.id is None:
        jobs = client.campaigns()
        if args.json:
            out.write(json.dumps(jobs, indent=2) + "\n")
            return 0
        if not jobs:
            out.write("no campaigns\n")
            return 0
        rows = [{
            "id": job["id"], "tenant": job["tenant"],
            "status": job["status"], "cells": job["cells"],
            "shipped": job["shipped"],
            "counts": _counts_line(job["counts"]),
        } for job in jobs]
        out.write(format_table(rows) + "\n")
        return 0
    detail = client.status(args.id)
    if args.json:
        out.write(json.dumps(detail, indent=2) + "\n")
        return 0
    out.write(f"campaign {detail['id']} (tenant {detail['tenant']}, "
              f"priority {detail['priority']}): {detail['status']}, "
              f"{_counts_line(detail['counts'])}\n")
    rows = [{
        "cell": cell["index"], "label": cell["label"],
        "state": cell["state"], "T(s)": round(cell["elapsed"], 3),
        "error": (f"{cell['error']['type']}: {cell['error']['message']}"
                  if cell.get("error") else ""),
    } for cell in detail["cell_states"]]
    out.write(format_table(rows) + "\n")
    return 0


def cmd_results(args, out):
    client = ServiceClient(args.server, secret=args.secret)
    for row in client.results(args.id):
        out.write(json.dumps(row) + "\n")
    return 0


def cmd_cancel(args, out):
    client = ServiceClient(args.server, secret=args.secret)
    summary = client.cancel(args.id)
    out.write(f"campaign {summary['id']}: {summary['status']}, "
              f"{_counts_line(summary['counts'])}\n")
    return 0


def cmd_campaign(args, out):
    store = ResultStore(args.cache_dir if args.cache_dir
                        else default_cache_dir())
    if args.action == "clear":
        removed = store.clear()
        out.write(f"cleared {removed} cached cells from "
                  f"{os.path.abspath(store.cache_dir)}\n")
        return 0
    if args.action == "compact":
        report = store.compact()
        where = (f" into {os.path.basename(report['pack'])}"
                 if report["pack"] else "")
        out.write(f"packed {report['packed']} cells{where}, "
                  f"evicted {report['evicted']} corrupt entries\n")
        return 0
    out.write(render_status(store.status()) + "\n")
    return 0


_COMMANDS = {
    "lock": cmd_lock,
    "verify": cmd_verify,
    "attack": cmd_attack,
    "report": cmd_report,
    "circuits": cmd_circuits,
    "schemes": cmd_schemes,
    "attacks": cmd_attacks,
    "matrix": cmd_matrix,
    "scaling": cmd_scaling,
    "worker": cmd_worker,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "results": cmd_results,
    "cancel": cmd_cancel,
    "campaign": cmd_campaign,
}


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
