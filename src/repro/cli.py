"""``repro-lock`` — command-line TriLock flow over ``.bench`` files.

Lock::

    repro-lock lock design.bench --kappa-s 3 --alpha 0.6 --s-pairs 10 \
        --out locked.bench --key-out design.key

Verify a locked design against the original under its key::

    repro-lock verify design.bench locked.bench design.key --depth 8

Attack a locked design (oracle = the original netlist)::

    repro-lock attack design.bench locked.bench --kappa 4

Report security/cost metrics::

    repro-lock report design.bench locked.bench design.key

Inspect or clear the experiment-campaign result cache::

    repro-lock campaign status
    repro-lock campaign clear --cache-dir /tmp/cells
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro._cliutils import attack_jobs_arg
from repro.attacks import bounded_equivalence, scc_report, sequential_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.campaign import ResultStore, default_cache_dir, render_status
from repro.core import KeySequence, TriLockConfig, lock
from repro.core.locker import LockedCircuit
from repro.errors import ReproError
from repro.metrics import simulate_fc
from repro.netlist import dump_bench, load_bench
from repro.tech import overhead


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-lock",
        description="TriLock sequential logic locking over .bench files.")
    commands = parser.add_subparsers(dest="command", required=True)

    lock_cmd = commands.add_parser("lock", help="lock a .bench netlist")
    lock_cmd.add_argument("design", help="original .bench file")
    lock_cmd.add_argument("--kappa-s", type=int, default=2)
    lock_cmd.add_argument("--kappa-f", type=int, default=1)
    lock_cmd.add_argument("--alpha", type=float, default=0.6)
    lock_cmd.add_argument("--s-pairs", type=int, default=10)
    lock_cmd.add_argument("--seed", type=int, default=0)
    lock_cmd.add_argument("--out", required=True,
                          help="locked .bench output path")
    lock_cmd.add_argument("--key-out", required=True,
                          help="key file output path (JSON)")

    verify_cmd = commands.add_parser(
        "verify", help="BMC-check locked(key) against the original")
    verify_cmd.add_argument("design")
    verify_cmd.add_argument("locked")
    verify_cmd.add_argument("key", help="key file written by 'lock'")
    verify_cmd.add_argument("--depth", type=int, default=8)

    attack_cmd = commands.add_parser(
        "attack", help="run the sequential SAT attack")
    attack_cmd.add_argument("design", help="oracle netlist (.bench)")
    attack_cmd.add_argument("locked")
    attack_cmd.add_argument("--kappa", type=int, required=True,
                            help="key cycle length")
    attack_cmd.add_argument("--depth", type=int, default=None,
                            help="unrolling depth b* (omit to deepen)")
    attack_cmd.add_argument("--max-dips", type=int, default=None)
    attack_cmd.add_argument("--time-budget", type=float, default=None)
    attack_cmd.add_argument("--dip-batch", type=int, default=1,
                            help="DIPs extracted and pinned per miter "
                                 "round (default 1 = classic loop)")
    attack_cmd.add_argument("--attack-jobs", type=attack_jobs_arg,
                            default=1,
                            help="worker processes racing solver configs: "
                                 "an int (default 1 = serial single "
                                 "solver) or 'auto' (one per config, "
                                 "clamped to the CPU budget)")
    attack_cmd.add_argument("--portfolio", default=None,
                            help="solver portfolio: 'default', 'race', "
                                 "'race2', 'all', or comma-separated "
                                 "backend names")

    report_cmd = commands.add_parser(
        "report", help="security and cost report of a locked design")
    report_cmd.add_argument("design")
    report_cmd.add_argument("locked")
    report_cmd.add_argument("key")
    report_cmd.add_argument("--fc-depth", type=int, default=4)
    report_cmd.add_argument("--fc-samples", type=int, default=800)

    campaign_cmd = commands.add_parser(
        "campaign", help="inspect the experiment-campaign result cache")
    campaign_sub = campaign_cmd.add_subparsers(dest="action", required=True)
    for action in ("status", "clear"):
        action_cmd = campaign_sub.add_parser(
            action,
            help="summarise cached cells" if action == "status"
            else "delete every cached cell")
        action_cmd.add_argument(
            "--cache-dir", default=None,
            help="cache directory (default $REPRO_CACHE_DIR or "
                 ".repro-cache)")
    return parser


def _write_key_file(path, locked):
    payload = {
        "format": "trilock-key-v1",
        "width": locked.key.width,
        "cycles": locked.key.cycles,
        "key": str(locked.key),
        "key_int": locked.key.as_int,
        "kappa_s": locked.config.kappa_s,
        "kappa_f": locked.config.kappa_f,
        "alpha": locked.config.alpha,
        "original_registers": list(locked.original_registers),
        "extra_registers": list(locked.extra_registers),
        "encoded_registers": list(locked.encoded_registers),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def _read_key_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != "trilock-key-v1":
        raise ReproError(f"{path} is not a trilock key file")
    return payload


def _key_from_payload(payload):
    return KeySequence.from_int(
        payload["key_int"], payload["cycles"], payload["width"])


def cmd_lock(args, out):
    original = load_bench(args.design)
    config = TriLockConfig(
        kappa_s=args.kappa_s, kappa_f=args.kappa_f, alpha=args.alpha,
        s_pairs=args.s_pairs, seed=args.seed)
    locked = lock(original, config)
    dump_bench(locked.netlist, args.out)
    _write_key_file(args.key_out, locked)
    stats = locked.netlist.stats()
    out.write(f"locked {args.design}: {stats['flops']} FFs, "
              f"{stats['gates']} gates -> {args.out}\n")
    out.write(f"key ({config.kappa} cycles x {locked.width} bits) "
              f"-> {args.key_out}\n")
    out.write(f"re-encoded pairs: {len(locked.reencoded_pairs)}\n")
    return 0


def cmd_verify(args, out):
    original = load_bench(args.design)
    locked = load_bench(args.locked)
    payload = _read_key_file(args.key)
    key = _key_from_payload(payload)
    result = bounded_equivalence(
        original, locked, depth=args.depth,
        prefix_vectors=list(key.vectors))
    if result.equivalent:
        out.write(f"PASS: locked(key) == original for {args.depth} cycles\n")
        return 0
    out.write("FAIL: counterexample input sequence:\n")
    for cycle, vector in enumerate(result.counterexample):
        bits = "".join("1" if b else "0" for b in vector)
        out.write(f"  cycle {cycle}: {bits}\n")
    return 1


def cmd_attack(args, out):
    original = load_bench(args.design)
    locked = load_bench(args.locked)
    oracle = SimulationOracle(original)
    result = sequential_sat_attack(
        locked, args.kappa, oracle, known_depth=args.depth,
        max_dips=args.max_dips, time_budget=args.time_budget,
        reference=original, dip_batch=args.dip_batch,
        portfolio=args.portfolio, attack_jobs=args.attack_jobs)
    if result.success:
        out.write(f"key recovered in {result.n_dips} DIPs "
                  f"({result.seconds:.2f}s, depth {result.depth}): "
                  f"{result.key}\n")
        return 0
    out.write(f"attack stopped: {result.stop_reason} after "
              f"{result.n_dips} DIPs ({result.seconds:.2f}s)\n")
    return 1


def cmd_report(args, out):
    original = load_bench(args.design)
    locked_netlist = load_bench(args.locked)
    payload = _read_key_file(args.key)
    key = _key_from_payload(payload)

    config = TriLockConfig(
        kappa_s=payload["kappa_s"], kappa_f=payload["kappa_f"],
        alpha=payload["alpha"])
    locked = LockedCircuit(
        netlist=locked_netlist,
        original=original,
        config=config,
        key=key,
        spec=None,
        error_net="",
        original_registers=tuple(payload["original_registers"]),
        extra_registers=tuple(payload["extra_registers"]),
        encoded_registers=tuple(payload.get("encoded_registers", ())),
    )
    fc = simulate_fc(locked, depth=args.fc_depth,
                     n_samples=args.fc_samples)
    sccs = scc_report(locked)
    adp = overhead(original, locked_netlist)
    ndip = 2 ** (payload["kappa_s"] * payload["width"])
    out.write(f"SAT resilience: ndip = 2^(kappa_s*|I|) = {ndip:.3e}\n")
    out.write(f"functional corruptibility (depth {args.fc_depth}, "
              f"{args.fc_samples} samples): {fc:.3f}\n")
    out.write(f"removal resilience: O={sccs.o_sccs} E={sccs.e_sccs} "
              f"M={sccs.m_sccs} PM={sccs.pm_percent:.1f}%\n")
    out.write(f"overhead: area {adp.area_overhead:+.1%}, "
              f"power {adp.power_overhead:+.1%}, "
              f"delay {adp.delay_overhead:+.1%}\n")
    return 0


def cmd_campaign(args, out):
    store = ResultStore(args.cache_dir if args.cache_dir
                        else default_cache_dir())
    if args.action == "clear":
        removed = store.clear()
        out.write(f"cleared {removed} cached cells from "
                  f"{os.path.abspath(store.cache_dir)}\n")
        return 0
    out.write(render_status(store.status()) + "\n")
    return 0


_COMMANDS = {
    "lock": cmd_lock,
    "verify": cmd_verify,
    "attack": cmd_attack,
    "report": cmd_report,
    "campaign": cmd_campaign,
}


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        out.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
