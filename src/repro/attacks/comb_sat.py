"""COMB-SAT: the oracle-guided DIP attack of Subramanyan et al. [24].

Operates on a *combinational* locked circuit whose inputs split into data
inputs and key inputs (for sequential TriLock the caller passes an
unrolled circuit where the first ``κ`` cycle-inputs act as the key, per
Section II-B). Each iteration finds a distinguishing input pattern (DIP)
— a data pattern on which two keys that satisfy all constraints so far
disagree — queries the oracle, and pins both key copies to the observed
response. When no DIP remains, any satisfying key is functionally
equivalent on the attacked window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cnf import Cnf, encode
from repro.errors import AttackError
from repro.sat import Solver


@dataclass
class CombSatResult:
    """Outcome of one COMB-SAT run."""

    success: bool
    key: dict | None          # key input net -> bool (None if failed)
    n_dips: int
    seconds: float
    dips: list = field(default_factory=list)
    solver_stats: dict = field(default_factory=dict)
    stop_reason: str = "no_more_dips"


def _miter_copy_map(netlist, key_set, tag):
    """Rename map for a miter copy: shared data inputs, per-copy keys."""
    mapping = {}
    for net in netlist.nets():
        if net in key_set:
            mapping[net] = f"key_{tag}::{net}"
        elif netlist.is_input(net):
            mapping[net] = net  # data inputs are shared between copies
        else:
            mapping[net] = f"mtr_{tag}::{net}"
    return mapping


def _constraint_copy_map(netlist, key_set, tag, index):
    """Rename map for an I/O-constraint copy: shares only the key nets."""
    mapping = {}
    for net in netlist.nets():
        if net in key_set:
            mapping[net] = f"key_{tag}::{net}"
        else:
            mapping[net] = f"io_{tag}{index}::{net}"
    return mapping


def comb_sat_attack(locked, key_inputs, oracle_fn, max_dips=None,
                    collect_dips=False, time_budget=None):
    """Run the DIP loop; returns a :class:`CombSatResult`.

    ``locked``
        Combinational netlist; its inputs are ``key_inputs`` plus data
        inputs (order irrelevant).
    ``oracle_fn``
        Callable mapping a tuple of data-input bits (ordered like the data
        inputs appear in ``locked.inputs``) to the tuple of correct output
        bits (ordered like ``locked.outputs``).
    ``max_dips`` / ``time_budget``
        Optional effort caps; exceeding one returns ``success=False`` with
        ``stop_reason`` set accordingly.
    """
    start = time.perf_counter()
    key_inputs = list(key_inputs)
    key_set = set(key_inputs)
    unknown = key_set - set(locked.inputs)
    if unknown:
        raise AttackError(f"key inputs not in circuit: {sorted(unknown)[:4]}")
    data_inputs = [net for net in locked.inputs if net not in key_set]

    map_a = _miter_copy_map(locked, key_set, "a")
    map_b = _miter_copy_map(locked, key_set, "b")
    cnf = Cnf()
    var_of = {}
    encode(locked.renamed(map_a, name="miter_a"), cnf=cnf, var_of=var_of)
    encode(locked.renamed(map_b, name="miter_b"), cnf=cnf, var_of=var_of)

    solver = Solver()
    solver.ensure_vars(cnf.num_vars)
    if not solver.add_cnf(cnf):
        raise AttackError("locked circuit CNF is unsatisfiable")

    # Gated miter: act -> (some output pair differs).
    act = solver.new_var()
    diff_lits = []
    for net in locked.outputs:
        lit_a = var_of[map_a[net]]
        lit_b = var_of[map_b[net]]
        diff = solver.new_var()
        for clause in _xor_clauses(diff, lit_a, lit_b):
            solver.add_clause(clause)
        diff_lits.append(diff)
    solver.add_clause([-act] + diff_lits)

    n_dips = 0
    dips = []
    stop_reason = "no_more_dips"
    while True:
        if max_dips is not None and n_dips >= max_dips:
            stop_reason = "max_dips"
            break
        if time_budget is not None and \
                time.perf_counter() - start > time_budget:
            stop_reason = "time_budget"
            break
        if not solver.solve(assumptions=[act]):
            break  # no distinguishing pattern remains
        dip = tuple(
            solver.model_value(var_of[net]) for net in data_inputs
        )
        n_dips += 1
        if collect_dips:
            dips.append(dip)
        response = tuple(oracle_fn(dip))
        if len(response) != len(locked.outputs):
            raise AttackError("oracle response width mismatch")
        _pin_io_pair(solver, locked, key_set, var_of, dip, response,
                     data_inputs, n_dips)

    if stop_reason != "no_more_dips":
        return CombSatResult(
            success=False, key=None, n_dips=n_dips,
            seconds=time.perf_counter() - start, dips=dips,
            solver_stats=solver.stats(), stop_reason=stop_reason)

    if not solver.solve():
        raise AttackError("constraint store unsatisfiable: oracle inconsistent")
    key = {net: solver.model_value(var_of[map_a[net]]) for net in key_inputs}
    return CombSatResult(
        success=True, key=key, n_dips=n_dips,
        seconds=time.perf_counter() - start, dips=dips,
        solver_stats=solver.stats())


def _xor_clauses(out_var, lit_a, lit_b):
    return [
        [-out_var, lit_a, lit_b],
        [-out_var, -lit_a, -lit_b],
        [out_var, -lit_a, lit_b],
        [out_var, lit_a, -lit_b],
    ]


def _pin_io_pair(solver, locked, key_set, var_of, dip, response,
                 data_inputs, index):
    """Add two constraint copies: C(dip, kA) = y and C(dip, kB) = y.

    The circuit is first partially evaluated on the (constant) DIP, so
    each copy encodes only the key-dependent cone — the standard
    constraint-compaction trick that keeps the clause store linear in key
    logic rather than circuit size.
    """
    from repro.netlist.transform import simplified

    assignments = {net: (1 if bit else 0)
                   for net, bit in zip(data_inputs, dip)}
    specialized = simplified(locked, constant_inputs=assignments,
                             name=f"io_spec{index}")
    for tag in ("a", "b"):
        mapping = {}
        for net in specialized.nets():
            if net in key_set:
                mapping[net] = f"key_{tag}::{net}"
            else:
                mapping[net] = f"io_{tag}{index}::{net}"
        copy = specialized.renamed(mapping, name=f"io_{tag}{index}")
        cnf = Cnf(solver.num_vars)
        circuit = encode(copy, cnf=cnf, var_of=var_of)
        solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        for position, bit in enumerate(response):
            net = copy.outputs[position]
            solver.add_clause([circuit.lit(net, bool(bit))])
