"""COMB-SAT: the oracle-guided DIP attack of Subramanyan et al. [24].

Operates on a *combinational* locked circuit whose inputs split into data
inputs and key inputs (for sequential TriLock the caller passes an
unrolled circuit where the first ``κ`` cycle-inputs act as the key, per
Section II-B). Each iteration finds a distinguishing input pattern (DIP)
— a data pattern on which two keys that satisfy all constraints so far
disagree — queries the oracle, and pins both key copies to the observed
response. When no DIP remains, any satisfying key is functionally
equivalent on the attacked window.

The attack engine is built from two orthogonal pieces:

* :class:`DipEngine` owns the miter, the constraint store, and the
  solver — which may be a single registered backend or a racing
  :class:`~repro.sat.portfolio.PortfolioSolver` (``portfolio`` /
  ``attack_jobs`` knobs, see :func:`repro.sat.make_attack_solver`);
* :func:`comb_sat_attack` drives the DIP loop, optionally *batched*:
  ``dip_batch=k`` extracts up to ``k`` distinct DIPs per miter round by
  re-solving under blocking clauses gated on the miter activation
  literal, then pins all ``k`` oracle responses before the next round.
  Blocking a queried pattern is sound because once its I/O pair is
  pinned on both key copies no surviving key pair can disagree on it;
  gating the clause on ``act`` keeps key extraction and the
  candidate-key feasible set equivalent to pinning the same DIPs one at
  a time.

``dip_batch=1`` with the default portfolio is byte-identical to the
historical single-solver loop (same solver, same clauses, same DIP
sequence).
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field

from repro.cnf import Cnf, encode
from repro.errors import AttackError
from repro.netlist.transform import InputSpecializer, simplified
from repro.sat import make_attack_solver


@dataclass
class CombSatResult:
    """Outcome of one COMB-SAT run.

    ``solve_seconds`` / ``oracle_seconds`` / ``encode_seconds`` break the
    wall-clock into the DIP loop's three phases: miter solving (DIP
    extraction + key extraction), oracle queries, and I/O-pair pinning
    (specialise + CNF encode).  The remainder of ``seconds`` is loop
    overhead.
    """

    success: bool
    key: dict | None          # key input net -> bool (None if failed)
    n_dips: int
    seconds: float
    dips: list = field(default_factory=list)
    solver_stats: dict = field(default_factory=dict)
    stop_reason: str = "no_more_dips"
    n_rounds: int = 0         # miter rounds (== n_dips when dip_batch=1)
    solve_seconds: float = 0.0
    oracle_seconds: float = 0.0
    encode_seconds: float = 0.0


def _miter_copy_map(netlist, key_set, tag):
    """Rename map for a miter copy: shared data inputs, per-copy keys."""
    mapping = {}
    for net in netlist.nets():
        if net in key_set:
            mapping[net] = f"key_{tag}::{net}"
        elif netlist.is_input(net):
            mapping[net] = net  # data inputs are shared between copies
        else:
            mapping[net] = f"mtr_{tag}::{net}"
    return mapping


def _constraint_copy_map(netlist, key_set, tag, index):
    """Rename map for an I/O-constraint copy: shares only the key nets."""
    mapping = {}
    for net in netlist.nets():
        if net in key_set:
            mapping[net] = f"key_{tag}::{net}"
        else:
            mapping[net] = f"io_{tag}{index}::{net}"
    return mapping


class DipEngine:
    """Miter plus constraint store of one COMB-SAT attack.

    Builds the two-copy miter over ``locked`` (shared data inputs,
    per-copy key inputs), then serves the DIP loop: batched DIP
    extraction, I/O-pair pinning, and final key extraction.  The solver
    is either injected (``solver=...``) or built from the ``portfolio``
    and ``attack_jobs`` knobs; an engine that built its own solver also
    tears it down in :meth:`close`.
    """

    def __init__(self, locked, key_inputs, solver=None, portfolio=None,
                 attack_jobs=1):
        self.locked = locked
        self.key_inputs = list(key_inputs)
        self.key_set = set(self.key_inputs)
        unknown = self.key_set - set(locked.inputs)
        if unknown:
            raise AttackError(
                f"key inputs not in circuit: {sorted(unknown)[:4]}")
        self.data_inputs = [net for net in locked.inputs
                            if net not in self.key_set]

        if solver is not None and (portfolio is not None
                                   or attack_jobs != 1):
            raise AttackError(
                "pass either an explicit solver or the portfolio/"
                "attack_jobs knobs, not both (the injected solver would "
                "silently win)")
        self._owns_solver = solver is None
        self.solver = solver if solver is not None else \
            make_attack_solver(portfolio=portfolio, attack_jobs=attack_jobs)

        self.map_a = _miter_copy_map(locked, self.key_set, "a")
        self.map_b = _miter_copy_map(locked, self.key_set, "b")
        cnf = Cnf()
        self.var_of = {}
        encode(locked.renamed(self.map_a, name="miter_a"), cnf=cnf,
               var_of=self.var_of)
        encode(locked.renamed(self.map_b, name="miter_b"), cnf=cnf,
               var_of=self.var_of)
        self.solver.ensure_vars(cnf.num_vars)
        if not self.solver.add_cnf(cnf):
            raise AttackError("locked circuit CNF is unsatisfiable")

        # Gated miter: act -> (some output pair differs).
        self.act = self.solver.new_var()
        diff_lits = []
        for net in locked.outputs:
            lit_a = self.var_of[self.map_a[net]]
            lit_b = self.var_of[self.map_b[net]]
            diff = self.solver.new_var()
            for clause in _xor_clauses(diff, lit_a, lit_b):
                self.solver.add_clause(clause)
            diff_lits.append(diff)
        self.solver.add_clause([-self.act] + diff_lits)
        self.n_pinned = 0

        # Pinning scaffolding, reused across every pinned DIP: the
        # specializer caches the fold order of `locked`, the Cnf arena is
        # recycled per batch, and the key-variable map lets copy "b" of
        # each constraint be mirrored from copy "a" by literal remapping
        # instead of a second specialise+encode pass.
        # REPRO_LEGACY_PIN=1 keeps the pre-cache pinning path selectable
        # for benchmarking and differential tests.
        self._specializer = None
        self._pin_cnf = Cnf()
        self._key_var_b_of_a = {
            self.var_of[self.map_a[net]]: self.var_of[self.map_b[net]]
            for net in self.key_inputs
        }
        self._legacy_pin = os.environ.get(
            "REPRO_LEGACY_PIN", "") not in ("", "0")

    # ------------------------------------------------------------------
    def _solve(self, assumptions=()):
        """Solve, refusing to conflate *interrupted* with UNSAT.

        The backend contract allows ``solve`` to return ``None``
        (unknown) when an interrupt callback fired; treating that as
        "no DIP remains" would let an interrupted attack report success
        with an under-constrained key.
        """
        result = self.solver.solve(assumptions=assumptions)
        if result is None:
            raise AttackError(
                "miter solve interrupted (unknown result); the attack "
                "cannot conclude from a cancelled search")
        return result

    def find_dip_batch(self, limit=1, deadline=None):
        """Extract up to ``limit`` distinct DIPs from the current store.

        The first DIP comes from a plain gated-miter solve; each further
        one re-solves under a blocking clause excluding the data patterns
        already in the batch.  Blocking clauses are permanent but gated
        on the miter activation literal, so they only narrow the search
        for *new* DIPs — key extraction and feasibility queries (which
        leave ``act`` free) never see them, and the constraint store
        stays equivalent to pinning the same DIPs one at a time.
        Returns the batch in extraction order; empty means no DIP remains.

        ``deadline`` (a ``time.perf_counter`` instant) stops *re-solves*
        once passed, so a batch cannot overshoot an attack time budget
        by more than one miter solve — the first extraction of a round
        always runs, keeping ``dip_batch=1`` behaviour untouched.
        """
        if limit < 1:
            raise AttackError(f"DIP batch limit must be >= 1, got {limit}")
        batch = []
        while len(batch) < limit:
            if batch and deadline is not None \
                    and time.perf_counter() > deadline:
                break
            if not self._solve(assumptions=[self.act]):
                break
            dip = tuple(self.solver.model_value(self.var_of[net])
                        for net in self.data_inputs)
            batch.append(dip)
            if len(batch) >= limit or not self.data_inputs:
                break
            self.solver.add_clause([-self.act] + [
                -var if bit else var
                for var, bit in zip(
                    (self.var_of[net] for net in self.data_inputs), dip)
            ])
        return batch

    def pin_response(self, dip, response):
        """Constrain both key copies to produce ``response`` on ``dip``.

        The circuit is first partially evaluated on the (constant) DIP,
        so each copy encodes only the key-dependent cone — the standard
        constraint-compaction trick that keeps the clause store linear in
        key logic rather than circuit size.
        """
        self.pin_batch([(dip, response)])

    def pin_batch(self, pairs):
        """Pin a batch of ``(dip, response)`` I/O pairs in one arena pass.

        Clause-for-clause identical to calling :meth:`pin_response` per
        pair: each pair contributes copy-"a" clauses, copy-"a" response
        units, copy-"b" clauses, copy-"b" units, in batch order.  The
        fast path specialises through the cached
        :class:`~repro.netlist.transform.InputSpecializer`, encodes copy
        "a" into one reused Cnf arena, and *mirrors* copy "b" by literal
        remapping: the two copies are structurally identical and share
        only the key variables with the rest of the store, so copy "b"
        is copy "a" with ``key_a`` variables swapped for ``key_b`` and
        every fresh variable shifted by the copy's fresh-variable count —
        exactly what a second ``encode()`` would allocate, without paying
        for the second specialise+encode pass.
        """
        pairs = [(dip, tuple(response)) for dip, response in pairs]
        n_outputs = len(self.locked.outputs)
        for _dip, response in pairs:
            if len(response) != n_outputs:
                raise AttackError("oracle response width mismatch")
        if self._legacy_pin:
            for dip, response in pairs:
                self._pin_legacy(dip, response)
            return
        if self._specializer is None:
            self._specializer = InputSpecializer(self.locked)
        key_b_of_a = self._key_var_b_of_a
        cnf = self._pin_cnf
        cnf.num_vars = self.solver.num_vars
        cnf.clauses.clear()
        staged = []
        for dip, response in pairs:
            self.n_pinned += 1
            index = self.n_pinned
            assignments = {net: (1 if bit else 0)
                           for net, bit in zip(self.data_inputs, dip)}
            specialized = self._specializer.specialize(
                assignments, name=f"io_spec{index}")
            mapping = _constraint_copy_map(specialized, self.key_set, "a",
                                           index)
            copy_a = specialized.renamed(mapping, name=f"io_a{index}")
            start = len(cnf.clauses)
            base_vars = cnf.num_vars
            circuit = encode(copy_a, cnf=cnf, var_of=self.var_of)
            n_fresh = cnf.num_vars - base_vars
            a_clauses = cnf.clauses[start:]
            a_units = [[circuit.lit(net, bool(bit))]
                       for net, bit in zip(copy_a.outputs, response)]

            def mirror(lit, _base=base_vars, _shift=n_fresh):
                var = lit if lit > 0 else -lit
                mapped = key_b_of_a.get(var)
                if mapped is None:
                    mapped = var + _shift if var > _base else var
                return mapped if lit > 0 else -mapped

            staged.extend(a_clauses)
            staged.extend(a_units)
            staged.extend([mirror(lit) for lit in clause]
                          for clause in a_clauses)
            staged.extend([mirror(lit) for lit in clause]
                          for clause in a_units)
            cnf.num_vars += n_fresh  # reserve copy-b's variables
        self.solver.ensure_vars(cnf.num_vars)
        for clause in staged:
            self.solver.add_clause(clause)

    def _pin_legacy(self, dip, response):
        """Pre-PR-10 pinning path: fresh specialise + encode per copy.

        Kept (behind ``REPRO_LEGACY_PIN=1``) as the benchmarking baseline
        and as the differential reference that the mirrored fast path
        must match clause for clause.
        """
        self.n_pinned += 1
        index = self.n_pinned
        assignments = {net: (1 if bit else 0)
                       for net, bit in zip(self.data_inputs, dip)}
        specialized = simplified(self.locked, constant_inputs=assignments,
                                 name=f"io_spec{index}")
        for tag in ("a", "b"):
            mapping = _constraint_copy_map(specialized, self.key_set, tag,
                                           index)
            copy = specialized.renamed(mapping, name=f"io_{tag}{index}")
            cnf = Cnf(self.solver.num_vars)
            circuit = encode(copy, cnf=cnf, var_of=self.var_of)
            self.solver.ensure_vars(cnf.num_vars)
            for clause in cnf.clauses:
                self.solver.add_clause(clause)
            for position, bit in enumerate(response):
                net = copy.outputs[position]
                self.solver.add_clause([circuit.lit(net, bool(bit))])

    def solve_key(self):
        """A key consistent with every pinned I/O pair (raises if none)."""
        if not self._solve():
            raise AttackError(
                "constraint store unsatisfiable: oracle inconsistent")
        return {net: self.solver.model_value(self.var_of[self.map_a[net]])
                for net in self.key_inputs}

    def feasible_keys(self):
        """Every key assignment consistent with the pinned I/O pairs.

        Exhaustive over ``2^|key_inputs|`` — a diagnostic for tests on
        toy circuits (this is the candidate-key feasible set that batched
        and sequential pinning must agree on).
        """
        feasible = set()
        key_vars = [self.var_of[self.map_a[net]] for net in self.key_inputs]
        for bits in itertools.product((False, True),
                                      repeat=len(key_vars)):
            assumptions = [var if bit else -var
                           for var, bit in zip(key_vars, bits)]
            if self._solve(assumptions=assumptions):
                feasible.add(bits)
        return feasible

    def close(self):
        """Tear down a solver this engine created (no-op otherwise)."""
        if self._owns_solver and hasattr(self.solver, "close"):
            self.solver.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def comb_sat_attack(locked, key_inputs, oracle_fn, max_dips=None,
                    collect_dips=False, time_budget=None, dip_batch=1,
                    portfolio=None, attack_jobs=1, solver=None,
                    oracle_batch_fn=None):
    """Run the DIP loop; returns a :class:`CombSatResult`.

    ``locked``
        Combinational netlist; its inputs are ``key_inputs`` plus data
        inputs (order irrelevant).
    ``oracle_fn``
        Callable mapping a tuple of data-input bits (ordered like the data
        inputs appear in ``locked.inputs``) to the tuple of correct output
        bits (ordered like ``locked.outputs``).
    ``oracle_batch_fn``
        Optional callable mapping a *list* of data-input tuples to the
        list of corresponding output tuples.  When given, a miter round
        that extracted ``k > 1`` DIPs issues ONE batched oracle call
        instead of ``k`` serial ``oracle_fn`` calls — the responses (and
        therefore the pinned constraint store, the DIP walk, and the
        recovered key) are required to be bit-identical to the serial
        loop; only the oracle's call count changes.  Single-DIP rounds
        still go through ``oracle_fn`` so ``dip_batch=1`` stays
        byte-identical to the historical loop, accounting included.
    ``max_dips`` / ``time_budget``
        Optional effort caps; exceeding one returns ``success=False`` with
        ``stop_reason`` set accordingly.
    ``dip_batch``
        DIPs extracted (and oracle responses pinned) per miter round;
        1 reproduces the classic one-DIP-per-iteration loop exactly.
    ``portfolio`` / ``attack_jobs`` / ``solver``
        Solver selection, forwarded to :class:`DipEngine`.
    """
    start = time.perf_counter()
    if dip_batch < 1:
        raise AttackError(f"dip_batch must be >= 1, got {dip_batch}")
    deadline = None if time_budget is None else start + time_budget
    solve_seconds = 0.0
    oracle_seconds = 0.0
    encode_seconds = 0.0
    with DipEngine(locked, key_inputs, solver=solver,
                   portfolio=portfolio, attack_jobs=attack_jobs) as engine:
        n_dips = 0
        n_rounds = 0
        dips = []
        stop_reason = "no_more_dips"
        while True:
            if max_dips is not None and n_dips >= max_dips:
                stop_reason = "max_dips"
                break
            if deadline is not None and time.perf_counter() > deadline:
                stop_reason = "time_budget"
                break
            limit = dip_batch
            if max_dips is not None:
                limit = min(limit, max_dips - n_dips)
            phase_start = time.perf_counter()
            batch = engine.find_dip_batch(limit, deadline=deadline)
            solve_seconds += time.perf_counter() - phase_start
            if not batch:
                break  # no distinguishing pattern remains
            n_rounds += 1
            responses = None
            if oracle_batch_fn is not None and len(batch) > 1:
                phase_start = time.perf_counter()
                responses = [tuple(response)
                             for response in oracle_batch_fn(list(batch))]
                oracle_seconds += time.perf_counter() - phase_start
                if len(responses) != len(batch):
                    raise AttackError(
                        "batched oracle returned "
                        f"{len(responses)} responses for {len(batch)} DIPs")
            pins = []
            for position, dip in enumerate(batch):
                # Mid-batch budget check: the first pin of a round always
                # lands (dip_batch=1 behaviour is untouched); later pins
                # stop once the budget is spent — the attack is failing
                # with stop_reason="time_budget" anyway, so the skipped
                # patterns' gated blocking clauses are harmless.
                if position and deadline is not None \
                        and time.perf_counter() > deadline:
                    stop_reason = "time_budget"
                    break
                n_dips += 1
                if collect_dips:
                    dips.append(dip)
                if responses is not None:
                    response = responses[position]
                else:
                    phase_start = time.perf_counter()
                    response = tuple(oracle_fn(dip))
                    oracle_seconds += time.perf_counter() - phase_start
                pins.append((dip, response))
            phase_start = time.perf_counter()
            engine.pin_batch(pins)
            encode_seconds += time.perf_counter() - phase_start
            if stop_reason == "time_budget":
                break

        if stop_reason != "no_more_dips":
            return CombSatResult(
                success=False, key=None, n_dips=n_dips,
                seconds=time.perf_counter() - start, dips=dips,
                solver_stats=engine.solver.stats(), stop_reason=stop_reason,
                n_rounds=n_rounds, solve_seconds=solve_seconds,
                oracle_seconds=oracle_seconds, encode_seconds=encode_seconds)

        phase_start = time.perf_counter()
        key = engine.solve_key()
        solve_seconds += time.perf_counter() - phase_start
        return CombSatResult(
            success=True, key=key, n_dips=n_dips,
            seconds=time.perf_counter() - start, dips=dips,
            solver_stats=engine.solver.stats(), n_rounds=n_rounds,
            solve_seconds=solve_seconds, oracle_seconds=oracle_seconds,
            encode_seconds=encode_seconds)


def _xor_clauses(out_var, lit_a, lit_b):
    return [
        [-out_var, lit_a, lit_b],
        [-out_var, -lit_a, -lit_b],
        [out_var, -lit_a, lit_b],
        [out_var, lit_a, -lit_b],
    ]
