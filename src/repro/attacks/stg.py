"""State-transition-graph extraction and signature analysis.

Section II-C observes that locking schemes leave *behavioural* signatures
in the STG (e.g. State-Deflection's sink clusters have no outgoing edge
back to the original states), and Section V names "signature analysis on
the STG" as the open attack vector against TriLock. This module provides
the instrumentation for that study on small circuits:

* :func:`extract_stg` — exhaustive reachable-state exploration from reset
  (bit-parallel over the whole input alphabet per state);
* :func:`terminal_sccs` — sink clusters: the State-Deflection signature;
* :func:`stg_report` — signature summary of a locked circuit: reachable
  state counts, absorbing (inescapable) state fractions, and how many
  states exist only under wrong keys.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from repro.errors import AttackError
from repro.sim.bitvec import mask_for
from repro.sim.comb import CombSimulator

#: Exhaustive exploration guards.
_MAX_INPUT_BITS = 10
_DEFAULT_MAX_STATES = 100_000


def extract_stg(netlist, max_states=_DEFAULT_MAX_STATES):
    """Explore all states reachable from reset; returns a DiGraph.

    Nodes are integers encoding the flop values (sorted flop order, MSB
    first); each state is expanded over the complete input alphabet in
    one bit-parallel evaluation. Guarded for small input counts.
    """
    width = len(netlist.inputs)
    if width > _MAX_INPUT_BITS:
        raise AttackError(
            f"exhaustive STG needs <= {_MAX_INPUT_BITS} inputs, "
            f"got {width}")
    flops = sorted(netlist.flops)
    n_inputs = 1 << width
    mask = mask_for(n_inputs)
    sim = CombSimulator(netlist)

    # Input net -> word enumerating the whole alphabet (pattern j = j).
    alphabet = {}
    for position, net in enumerate(netlist.inputs):
        word = 0
        for value in range(n_inputs):
            if (value >> (width - 1 - position)) & 1:
                word |= 1 << value
        alphabet[net] = word

    def state_bits(state):
        return {
            q: (mask if (state >> (len(flops) - 1 - k)) & 1 else 0)
            for k, q in enumerate(flops)
        }

    reset = 0
    for k, q in enumerate(flops):
        if netlist.flops[q].init:
            reset |= 1 << (len(flops) - 1 - k)

    graph = nx.DiGraph()
    graph.add_node(reset)
    frontier = deque([reset])
    while frontier:
        state = frontier.popleft()
        source = state_bits(state)
        source.update(alphabet)
        values = sim.evaluate(source, n_inputs)
        next_words = [values[netlist.flops[q].d] for q in flops]
        for j in range(n_inputs):
            nxt = 0
            for k, word in enumerate(next_words):
                if (word >> j) & 1:
                    nxt |= 1 << (len(flops) - 1 - k)
            if nxt not in graph:
                if graph.number_of_nodes() >= max_states:
                    raise AttackError(
                        f"STG exceeds max_states={max_states}")
                graph.add_node(nxt)
                frontier.append(nxt)
            graph.add_edge(state, nxt)
    return graph


def terminal_sccs(graph):
    """SCCs with no edge leaving them (sink clusters / absorbing sets)."""
    condensation = nx.condensation(graph)
    sinks = []
    for node in condensation.nodes:
        if condensation.out_degree(node) == 0:
            sinks.append(set(condensation.nodes[node]["members"]))
    return sinks


@dataclass
class StgReport:
    """Behavioural signature summary of a locked circuit."""

    locked_states: int
    original_states: int
    correct_key_states: int      # states on the correct-key trajectory
    wrong_key_only_states: int   # states never visited under k*
    terminal_clusters: int       # sink SCCs in the locked STG
    largest_terminal_fraction: float
    original_terminal_clusters: int = 0  # sink SCCs before locking

    def expansion_factor(self):
        """How much locking inflated the reachable state space."""
        if self.original_states == 0:
            return 0.0
        return self.locked_states / self.original_states


def _reachable_under_key(netlist, key_vectors, stg):
    """States reachable when the first κ inputs are pinned to the key."""
    flops = sorted(netlist.flops)
    width = len(netlist.inputs)
    sim = CombSimulator(netlist)
    mask = 1

    def step(state, vector):
        source = {
            q: ((state >> (len(flops) - 1 - k)) & 1)
            for k, q in enumerate(flops)
        }
        for net, bit in zip(netlist.inputs, vector):
            source[net] = 1 if bit else 0
        values = sim.evaluate(source, mask)
        nxt = 0
        for k, q in enumerate(flops):
            if values[netlist.flops[q].d] & 1:
                nxt |= 1 << (len(flops) - 1 - k)
        return nxt

    reset = 0
    for k, q in enumerate(flops):
        if netlist.flops[q].init:
            reset |= 1 << (len(flops) - 1 - k)

    # Key phase: a single deterministic path.
    state = reset
    visited = {reset}
    for vector in key_vectors:
        state = step(state, vector)
        visited.add(state)

    # After the key: full alphabet BFS restricted to the precomputed STG.
    frontier = deque([state])
    post_key = {state}
    while frontier:
        current = frontier.popleft()
        for successor in stg.successors(current):
            if successor not in post_key:
                post_key.add(successor)
                frontier.append(successor)
    return visited | post_key


def stg_report(locked, max_states=_DEFAULT_MAX_STATES):
    """Signature analysis of a :class:`LockedCircuit` (small circuits)."""
    locked_stg = extract_stg(locked.netlist, max_states=max_states)
    original_stg = extract_stg(locked.original, max_states=max_states)
    correct = _reachable_under_key(
        locked.netlist, locked.key_vectors(), locked_stg)
    sinks = terminal_sccs(locked_stg)
    total = locked_stg.number_of_nodes()
    largest_sink = max((len(s) for s in sinks), default=0)
    return StgReport(
        locked_states=total,
        original_states=original_stg.number_of_nodes(),
        correct_key_states=len(correct),
        wrong_key_only_states=total - len(correct & set(locked_stg.nodes)),
        terminal_clusters=len(sinks),
        largest_terminal_fraction=largest_sink / total if total else 0.0,
        original_terminal_clusters=len(terminal_sccs(original_stg)),
    )
