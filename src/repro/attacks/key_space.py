"""Key-space elimination tracing.

Theorem 1 is a statement about *how many wrong keys each DIP can kill*:
against ``E^SF``, a DIP eliminates every wrong key sharing one prefix
(plus, once, all EF-column keys), so the survivor count steps down in
equal-size blocks; against ``E^N`` it steps down by exactly one. This
module measures that directly on exhaustively countable instances by
projected model counting over the key variables after each DIP — the
quantitative picture behind Fig. 4's ``ndip`` axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.comb_sat import comb_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.attacks.seq_sat import unrolled_attack_view
from repro.cnf import Cnf, encode
from repro.errors import AttackError
from repro.netlist.transform import simplified
from repro.sat import Solver

#: Guard: 2^(kappa*|I|) keys are enumerated after every DIP.
_MAX_KEY_BITS = 12


@dataclass
class KeySpaceTrace:
    """Survivor counts over the DIP loop (index i = after DIP i+1)."""

    initial_keys: int
    survivors: list
    eliminated_per_dip: list = field(default_factory=list)

    @property
    def n_dips(self):
        return len(self.survivors)

    def __post_init__(self):
        previous = self.initial_keys
        eliminated = []
        for count in self.survivors:
            eliminated.append(previous - count)
            previous = count
        self.eliminated_per_dip = eliminated


def key_space_trace(locked, depth=None, max_dips=None):
    """Run the DIP loop on ``locked`` and count surviving keys per DIP.

    Only feasible for small key spaces (``κ·|I| <= 12``); an analysis
    utility for tests and trade-off studies, not part of the attack.
    """
    kappa = locked.config.kappa
    width = len(locked.original.inputs)
    key_bits = kappa * width
    if key_bits > _MAX_KEY_BITS:
        raise AttackError(
            f"key space 2^{key_bits} too large to enumerate "
            f"(cap 2^{_MAX_KEY_BITS})")
    if depth is None:
        depth = locked.config.kappa_s

    view, key_inputs, data_inputs = unrolled_attack_view(
        locked.netlist, kappa, depth)
    view = simplified(view, name="keyspace_view")
    oracle = SimulationOracle(locked.original)

    def oracle_fn(flat_data):
        vectors = [tuple(flat_data[c * width:(c + 1) * width])
                   for c in range(depth)]
        trace = oracle.query(vectors)
        return tuple(bit for cycle in trace for bit in cycle)

    def unflatten(flat):
        return [tuple(flat[c * width:(c + 1) * width])
                for c in range(depth)]

    def oracle_batch_fn(flat_batch):
        return oracle.query_batch_flat(
            [unflatten(flat) for flat in flat_batch])

    # Collect the attack's DIPs once, then count survivors after each
    # prefix of the DIP sequence.
    result = comb_sat_attack(view, key_inputs, oracle_fn,
                             max_dips=max_dips, collect_dips=True,
                             oracle_batch_fn=oracle_batch_fn)
    responses = ([] if not result.dips else oracle.query_batch_flat(
        [unflatten(dip) for dip in result.dips]))
    survivors = []
    for upto in range(1, len(result.dips) + 1):
        survivors.append(_count_consistent_keys(
            view, key_inputs, data_inputs,
            result.dips[:upto], responses[:upto]))
    return KeySpaceTrace(initial_keys=1 << key_bits, survivors=survivors)


def _count_consistent_keys(view, key_inputs, data_inputs, dips, responses):
    """Count keys consistent with the observed I/O pairs.

    One circuit copy per I/O pair, all sharing the key variables, then
    model enumeration projected onto the key variables with blocking
    clauses.
    """
    solver = Solver()
    cnf = Cnf()
    var_of = {}
    base = encode(view, cnf=cnf, var_of=var_of)
    solver.ensure_vars(cnf.num_vars)
    if not solver.add_cnf(cnf):
        return 0

    key_set = set(key_inputs)
    for index, (dip, response) in enumerate(zip(dips, responses)):
        mapping = {net: (net if net in key_set else f"ks{index}::{net}")
                   for net in view.nets()}
        copy = view.renamed(mapping, name=f"ks{index}")
        extra = Cnf(solver.num_vars)
        circuit = encode(copy, cnf=extra, var_of=var_of)
        solver.ensure_vars(extra.num_vars)
        for clause in extra.clauses:
            solver.add_clause(clause)
        for net, bit in zip(data_inputs, dip):
            solver.add_clause([circuit.lit(mapping[net], bool(bit))])
        for net, bit in zip(view.outputs, response):
            solver.add_clause([circuit.lit(mapping[net], bool(bit))])

    key_vars = [base.var_of[net] for net in key_inputs]
    count = 0
    while solver.solve():
        model = [solver.model_value(v) for v in key_vars]
        count += 1
        if count > (1 << _MAX_KEY_BITS):
            raise AttackError("runaway key enumeration")
        blocking = [-v if value else v for v, value in zip(key_vars, model)]
        if not solver.add_clause(blocking):
            break
    return count
