"""Sequential SAT attack with unrolling and depth estimation.

Implements the attack family the paper evaluates against [6,14,15,16]:

1. Estimate (or be given) the minimum unrolling depth ``b*`` — Fun-SAT
   [16] shows ``b*`` is efficiently predictable; for TriLock it equals
   ``κs`` and the experiments pass it in exactly as the paper assumes.
2. Unroll the locked circuit ``κ + b`` cycles and run COMB-SAT on it,
   treating the first ``κ`` cycle-inputs as the key sequence.
3. Model-check the candidate key beyond depth ``b`` (BMC against the
   reference when the harness provides it, black-box random simulation
   otherwise); on a counterexample, deepen and continue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.attacks.bmc import bounded_equivalence
from repro.attacks.comb_sat import comb_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.core.keys import KeySequence
from repro.errors import AttackError
from repro.netlist.transform import simplified
from repro.sat import make_attack_solver
from repro.sim.random_vectors import make_rng, random_vectors
from repro.sim.seq import SequentialSimulator
from repro.unroll import unroll


@dataclass
class SeqAttackResult:
    """Outcome of a sequential SAT attack.

    ``oracle_queries`` counts input *sequences* the oracle simulated
    (:attr:`SimulationOracle.pattern_count`) — the number comparable
    across serial and batched oracle loops; ``oracle_calls`` counts
    oracle invocations (a batched round is one call).  The phase timers
    aggregate the per-depth COMB-SAT phase breakdown (miter solving,
    oracle simulation, constraint pinning); ``oracle_seconds``
    additionally counts candidate-key verification, which is pure
    simulation (locked replay plus oracle queries) and belongs to the
    same phase.
    """

    success: bool
    key: KeySequence | None
    n_dips: int
    seconds: float
    depth: int                 # final unrolling depth b
    depths_tried: list = field(default_factory=list)
    dips_per_depth: dict = field(default_factory=dict)
    verified: bool = False
    stop_reason: str = "done"
    oracle_queries: int = 0
    oracle_calls: int = 0
    solve_seconds: float = 0.0
    oracle_seconds: float = 0.0
    encode_seconds: float = 0.0


def unrolled_attack_view(locked_netlist, kappa, depth):
    """Unroll ``κ + depth`` cycles and expose only the post-key window.

    Returns ``(netlist, key_inputs, data_inputs)`` where the netlist's
    outputs are the cycle ``κ .. κ+depth−1`` outputs in cycle-major order.
    """
    if depth < 1:
        raise AttackError("attack depth must be >= 1")
    unrolled = unroll(locked_netlist, kappa + depth, name="attack_view")
    view = unrolled.netlist.copy()
    # Re-point outputs at the post-key window only.
    view.clear_outputs()
    for cycle in range(kappa, kappa + depth):
        for net in unrolled.outputs_at(cycle):
            view.add_output(net)
    key_inputs = []
    for cycle in range(kappa):
        key_inputs.extend(unrolled.inputs_at(cycle))
    data_inputs = []
    for cycle in range(kappa, kappa + depth):
        data_inputs.extend(unrolled.inputs_at(cycle))
    return view, key_inputs, data_inputs


def estimate_min_unroll_depth(locked_netlist, kappa, max_depth=16,
                              n_samples=256, seed=0, reference=None):
    """Fun-SAT-style ``b*`` estimation via sampled corruptibility.

    Simulates random keys/inputs at growing depth and returns the first
    depth where output corruption is observed (the depth at which DIPs
    exist at all). The caller may still need to deepen if wrong keys
    survive — that is what the model-check loop handles.
    """
    rng = make_rng(("bstar", seed))
    width = len(locked_netlist.inputs)
    locked_sim = SequentialSimulator(locked_netlist)
    if reference is None:
        raise AttackError("depth estimation needs a reference or oracle")
    oracle_sim = SequentialSimulator(reference)
    for depth in range(1, max_depth + 1):
        # Draw all samples in the serial loop's (key, data, key, data...)
        # order, then simulate the whole depth in two word-parallel
        # passes — the returned depth is identical to the per-sample
        # loop's (any corrupted sample at this depth triggers it).
        samples = [(random_vectors(rng, width, kappa),
                    random_vectors(rng, width, depth))
                   for _ in range(n_samples)]
        locked_out = locked_sim.run_pattern_matrix(
            [[key[cycle] for key, _data in samples]
             for cycle in range(kappa)]
            + [[data[cycle] for _key, data in samples]
               for cycle in range(depth)])
        oracle_out = oracle_sim.run_pattern_matrix(
            [[data[cycle] for _key, data in samples]
             for cycle in range(depth)])
        if locked_out[kappa:] != oracle_out:
            return depth
    return max_depth


def sequential_sat_attack(locked_netlist, kappa, oracle, known_depth=None,
                          max_depth=12, max_dips=None, time_budget=None,
                          reference=None, check_rounds=24, seed=0,
                          dip_batch=1, portfolio=None, attack_jobs=1,
                          oracle_batch=True):
    """Oracle-guided sequential SAT attack; returns :class:`SeqAttackResult`.

    ``oracle``
        A :class:`SimulationOracle` (black-box activated chip).
    ``known_depth``
        Start directly at ``b = known_depth`` (the paper's setting, with
        ``b* = κs``); otherwise iterative deepening starts at 1.
    ``reference``
        When the harness provides the original netlist, candidate keys are
        verified by BMC; otherwise by ``check_rounds`` random oracle
        sequences (pure black-box mode).
    ``dip_batch`` / ``portfolio`` / ``attack_jobs``
        Attack-engine knobs forwarded to the COMB-SAT core of each
        unrolling depth: DIPs extracted per miter round, solver-portfolio
        spec, and worker-process budget for racing the portfolio (the
        defaults reproduce the classic single-solver loop exactly).
        A racing portfolio spawns its worker fleet *once* and resets it
        between depths (the workers' clause stores are rebuilt in place)
        instead of respawning per depth — cheap under ``fork``, a real
        saving on ``spawn`` platforms.
    ``oracle_batch``
        When true (the default) each multi-DIP miter round issues ONE
        word-parallel :meth:`SimulationOracle.query_batch` call and the
        black-box verification rounds are batched the same way.  Results
        are bit-identical to the serial per-pattern loop (which
        ``oracle_batch=False`` preserves for differential testing); only
        the oracle's *call* count changes — ``oracle_queries`` reports
        simulated patterns either way.
    """
    start = time.perf_counter()
    rng = make_rng(("seqsat", seed))
    width = len(locked_netlist.inputs)
    depth = known_depth if known_depth is not None else 1
    depths_tried = []
    dips_per_depth = {}
    total_dips = 0
    solve_seconds = 0.0
    oracle_seconds = 0.0
    encode_seconds = 0.0

    # One solver for the whole attack when the engine supports cross-
    # phase reuse (the portfolio's `reset`); otherwise each depth builds
    # its own engine exactly as before, keeping the serial single-solver
    # path byte-identical to the historical behaviour.  The default
    # knobs can only yield a plain backend, so the probe (and the eager
    # misconfiguration check it performs) is skipped entirely there.
    shared_solver = None
    if attack_jobs != 1 or portfolio not in (None, "default"):
        candidate = make_attack_solver(portfolio=portfolio,
                                       attack_jobs=attack_jobs)
        if hasattr(candidate, "reset"):
            shared_solver = candidate
        elif hasattr(candidate, "close"):
            candidate.close()

    try:
        while depth <= max_depth:
            depths_tried.append(depth)
            view, key_inputs, data_inputs = unrolled_attack_view(
                locked_netlist, kappa, depth)
            view = _with_folded_constants(view)

            def oracle_fn(flat_data, _depth=depth):
                vectors = _unflatten(flat_data, width, _depth)
                trace = oracle.query(vectors)
                return tuple(bit for cycle in trace for bit in cycle)

            oracle_batch_fn = None
            if oracle_batch:
                def oracle_batch_fn(flat_batch, _depth=depth):
                    sequences = [_unflatten(flat, width, _depth)
                                 for flat in flat_batch]
                    return oracle.query_batch_flat(sequences)

            budget_left = None
            if time_budget is not None:
                budget_left = time_budget - (time.perf_counter() - start)
                if budget_left <= 0:
                    return SeqAttackResult(
                        success=False, key=None, n_dips=total_dips,
                        seconds=time.perf_counter() - start, depth=depth,
                        depths_tried=depths_tried,
                        dips_per_depth=dips_per_depth,
                        stop_reason="time_budget",
                        oracle_queries=oracle.pattern_count,
                        oracle_calls=oracle.query_count,
                        solve_seconds=solve_seconds,
                        oracle_seconds=oracle_seconds,
                        encode_seconds=encode_seconds)

            if shared_solver is not None:
                if len(depths_tried) > 1:  # same fleet, fresh formula
                    shared_solver.reset()
                engine = {"solver": shared_solver}
            else:
                engine = {"portfolio": portfolio,
                          "attack_jobs": attack_jobs}
            result = comb_sat_attack(
                view, key_inputs, oracle_fn,
                max_dips=None if max_dips is None
                else max_dips - total_dips,
                time_budget=budget_left, dip_batch=dip_batch,
                oracle_batch_fn=oracle_batch_fn, **engine)
            total_dips += result.n_dips
            dips_per_depth[depth] = result.n_dips
            solve_seconds += result.solve_seconds
            oracle_seconds += result.oracle_seconds
            encode_seconds += result.encode_seconds
            if not result.success:
                return SeqAttackResult(
                    success=False, key=None, n_dips=total_dips,
                    seconds=time.perf_counter() - start, depth=depth,
                    depths_tried=depths_tried,
                    dips_per_depth=dips_per_depth,
                    stop_reason=result.stop_reason,
                    oracle_queries=oracle.pattern_count,
                    oracle_calls=oracle.query_count,
                    solve_seconds=solve_seconds,
                    oracle_seconds=oracle_seconds,
                    encode_seconds=encode_seconds)

            candidate = _key_from_model(result.key, locked_netlist.inputs,
                                        kappa)
            phase_start = time.perf_counter()
            ok, counterexample_depth = _verify_candidate(
                locked_netlist, kappa, candidate, oracle, reference,
                rng, check_rounds, depth, batched=oracle_batch)
            oracle_seconds += time.perf_counter() - phase_start
            if ok:
                return SeqAttackResult(
                    success=True, key=candidate, n_dips=total_dips,
                    seconds=time.perf_counter() - start, depth=depth,
                    depths_tried=depths_tried,
                    dips_per_depth=dips_per_depth,
                    verified=True, oracle_queries=oracle.pattern_count,
                    oracle_calls=oracle.query_count,
                    solve_seconds=solve_seconds,
                    oracle_seconds=oracle_seconds,
                    encode_seconds=encode_seconds)
            depth = max(depth + 1, counterexample_depth)

        return SeqAttackResult(
            success=False, key=None, n_dips=total_dips,
            seconds=time.perf_counter() - start, depth=depth - 1,
            depths_tried=depths_tried, dips_per_depth=dips_per_depth,
            stop_reason="max_depth", oracle_queries=oracle.pattern_count,
            oracle_calls=oracle.query_count, solve_seconds=solve_seconds,
            oracle_seconds=oracle_seconds, encode_seconds=encode_seconds)
    finally:
        if shared_solver is not None:
            shared_solver.close()


def attack_locked_circuit(locked, known_depth="paper", **kwargs):
    """Convenience front-end for a :class:`LockedCircuit`.

    ``known_depth="paper"`` applies the paper's assumption ``b* = κs``
    (Fun-SAT estimates it efficiently); pass ``None`` for honest iterative
    deepening or an int to force a depth.
    """
    oracle = SimulationOracle(locked.original)
    if known_depth == "paper":
        known_depth = locked.config.kappa_s
    return sequential_sat_attack(
        locked.netlist, locked.config.kappa, oracle,
        known_depth=known_depth, reference=locked.original, **kwargs)


def _with_folded_constants(view):
    """Fold the reset constants through the unrolled circuit once."""
    return simplified(view, name=view.name + "_folded")


def _unflatten(flat_bits, width, cycles):
    if len(flat_bits) != width * cycles:
        raise AttackError("flattened stimulus has the wrong width")
    return [tuple(flat_bits[c * width:(c + 1) * width]) for c in range(cycles)]


def _key_from_model(key_assignment, input_names, kappa):
    """Rebuild the key sequence from unrolled key-input assignments."""
    vectors = []
    for cycle in range(kappa):
        vector = tuple(
            bool(key_assignment[f"{net}@{cycle}"]) for net in input_names
        )
        vectors.append(vector)
    return KeySequence(width=len(input_names), vectors=tuple(vectors))


def _verify_candidate(locked_netlist, kappa, candidate, oracle, reference,
                      rng, check_rounds, depth, batched=True):
    """Check a candidate key; returns (ok, counterexample_depth)."""
    if reference is not None:
        result = bounded_equivalence(
            reference, locked_netlist, depth=depth + kappa + 4,
            prefix_vectors=list(candidate.vectors))
        if result.equivalent:
            return True, depth
        # Deepen to the first cycle where the witness actually diverges.
        locked_sim = SequentialSimulator(locked_netlist)
        reference_sim = SequentialSimulator(reference)
        witness = result.counterexample
        locked_trace = locked_sim.run_vectors(
            list(candidate.vectors) + witness)
        reference_trace = reference_sim.run_vectors(witness)
        for cycle, (got, want) in enumerate(
                zip(locked_trace[kappa:], reference_trace)):
            if got != want:
                return False, cycle + 1
        return False, depth + 1  # pragma: no cover - witness must diverge

    # Black-box mode: random oracle sequences.
    width = candidate.width
    locked_sim = SequentialSimulator(locked_netlist)
    total_cycles = depth + kappa + 4
    if not batched:
        for _ in range(check_rounds):
            data = random_vectors(rng, width, total_cycles)
            locked_trace = locked_sim.run_vectors(
                list(candidate.vectors) + data)
            oracle_trace = oracle.query(data)
            if locked_trace[kappa:] != oracle_trace:
                for cycle, (got, want) in enumerate(
                        zip(locked_trace[kappa:], oracle_trace)):
                    if got != want:
                        return False, cycle + 1
        return True, depth

    # Batched: all rounds word-parallel in one locked simulation and one
    # oracle call.  Same random stimulus, same first-mismatch scan; the
    # only behavioural difference from the serial loop is that a
    # *failing* verification still drew and simulated every round.
    prefix = list(candidate.vectors)
    datas = [random_vectors(rng, width, total_cycles)
             for _ in range(check_rounds)]
    locked_out = locked_sim.run_pattern_matrix(
        [[prefix[cycle]] * check_rounds for cycle in range(kappa)]
        + [[data[cycle] for data in datas]
           for cycle in range(total_cycles)])
    oracle_traces = oracle.query_batch(datas)
    for j, oracle_trace in enumerate(oracle_traces):
        locked_trace = [locked_out[kappa + cycle][j]
                        for cycle in range(total_cycles)]
        if locked_trace != oracle_trace:
            for cycle, (got, want) in enumerate(
                    zip(locked_trace, oracle_trace)):
                if got != want:
                    return False, cycle + 1
    return True, depth
