"""Removal attack based on SCC analysis of the register connection graph.

Following Section II-C/III-C and [19], the attacker (assumed able to
recognise all state registers [20,21]) clusters them with an SCC
algorithm and tries to separate the locking registers from the original
ones. Two tools:

* :func:`scc_report` — the Table II metrics (#O-SCC, #E-SCC, #M-SCC,
  ``P_M``), scored against ground-truth provenance;
* :func:`attempt_removal` — an end-to-end removal attack: label registers
  that are structurally separable from the anchor cluster (no provenance
  used), strip them, and SAT-solve for tie-off constants that make the
  stripped circuit match the oracle *without any key*. On a separable
  (``S = 0``) design this unlocks the circuit; once Algorithm 1 has
  entangled the lock FSM into the mixed SCC there is nothing left to
  strip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.attacks.bmc import bounded_equivalence
from repro.attacks.comb_sat import comb_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.core.rcg import build_rcg, cyclic_sccs
from repro.netlist.transform import simplified, specialise_on_inputs
from repro.unroll import unroll


@dataclass
class SccReport:
    """Table II row: SCC clustering structure of one locked netlist."""

    o_sccs: int
    e_sccs: int
    m_sccs: int
    pm_percent: float
    total_registers: int
    registers_in_m: int
    components: list = field(default_factory=list)  # (kind, size) pairs

    def as_row(self):
        return {
            "O": self.o_sccs,
            "E": self.e_sccs,
            "M": self.m_sccs,
            "PM": self.pm_percent,
        }


def _kind_of(kinds):
    if "encoded" in kinds or len(kinds) > 1:
        return "M"
    return "O" if kinds == {"original"} else "E"


def scc_report(locked, include_trivial=False):
    """SCC clustering quality against ground-truth provenance.

    By default only *cyclic* SCCs are counted (size >= 2 or self-loop),
    the convention set in DESIGN.md §6; ``include_trivial`` also counts
    isolated registers as their own SCCs.
    """
    provenance = locked.register_provenance()
    graph = build_rcg(locked.netlist, provenance)
    if include_trivial:
        components = [set(c) for c in nx.strongly_connected_components(graph)]
    else:
        components = cyclic_sccs(graph)

    counts = {"O": 0, "E": 0, "M": 0}
    registers_in_m = 0
    details = []
    for component in components:
        kinds = {graph.nodes[n]["provenance"] for n in component}
        kind = _kind_of(kinds)
        counts[kind] += 1
        if kind == "M":
            registers_in_m += len(component)
        details.append((kind, len(component)))

    total = locked.netlist.num_flops()
    return SccReport(
        o_sccs=counts["O"],
        e_sccs=counts["E"],
        m_sccs=counts["M"],
        pm_percent=100.0 * registers_in_m / total if total else 0.0,
        total_registers=total,
        registers_in_m=registers_in_m,
        components=sorted(details, key=lambda item: -item[1]),
    )


def separable_registers(netlist, anchor_rank=0):
    """Registers structurally separable from an anchor SCC.

    Pure structural labelling — exactly what a removal attacker can
    compute. The anchor is the ``anchor_rank``-th largest cyclic SCC; a
    register is separable when it *influences* the anchor (it reaches it)
    but is itself outside the anchor's forward cone — the signature of an
    autonomous controller grafted onto a design, which is what a lock FSM
    is. Without re-encoding the lock's phase counter and comparison flags
    land here; Algorithm 1 exists precisely to absorb them into the mixed
    SCC so that nothing separable remains.
    """
    graph = build_rcg(netlist)
    components = sorted(cyclic_sccs(graph), key=len, reverse=True)
    if anchor_rank >= len(components):
        return []
    anchor = components[anchor_rank]
    seed = next(iter(anchor))
    forward = nx.descendants(graph, seed) | anchor
    backward = nx.ancestors(graph, seed) | anchor
    return [q for q in netlist.flops
            if q not in forward and q in backward]


@dataclass
class RemovalAttempt:
    """Result of the strip-and-solve removal attack."""

    success: bool
    stripped_registers: tuple
    tie_values: dict | None      # stripped Q net -> constant
    n_dips: int
    verified: bool
    reason: str = ""


def attempt_removal(locked, depth=None, max_dips=256, time_budget=None,
                    verify_depth=None, anchor_tries=3):
    """Strip separable registers, then solve tie constants via DIPs.

    The stripped registers' Q nets become free symbolic constants; a
    COMB-SAT run over the unrolled keyless circuit searches for values
    that reproduce the oracle from reset (no key cycles at all). Success
    means the locking scheme has been removed. Up to ``anchor_tries``
    candidate anchor SCCs are attempted (a real attacker iterates).
    """
    last = RemovalAttempt(
        success=False, stripped_registers=(), tie_values=None,
        n_dips=0, verified=False,
        reason="no structurally separable registers")
    for rank in range(anchor_tries):
        suspects = separable_registers(locked.netlist, anchor_rank=rank)
        if not suspects:
            continue
        attempt = _attempt_removal_with(
            locked, suspects, depth, max_dips, time_budget, verify_depth)
        if attempt.success:
            return attempt
        last = attempt
    return last


def _attempt_removal_with(locked, suspects, depth, max_dips, time_budget,
                          verify_depth):
    netlist = locked.netlist
    stripped = netlist.copy(name=netlist.name + "_stripped")
    for q in suspects:
        stripped.remove_flop(q)
    tie_nets = []
    for q in suspects:
        stripped.add_input(q)
        tie_nets.append(q)

    if depth is None:
        depth = locked.config.kappa_s + 1
    unrolled = unroll(stripped, depth, name="removal_view")
    view = unrolled.netlist

    # Merge the per-cycle copies of each tie net into one shared constant.
    mapping = {}
    for q in tie_nets:
        for cycle in range(depth):
            mapping[f"{q}@{cycle}"] = f"tie::{q}"
    merged_view = _merge_inputs(view, mapping)
    merged_view = simplified(merged_view, name="removal_view_folded")

    oracle = SimulationOracle(locked.original)
    width = len(locked.original.inputs)

    def oracle_fn(flat_data):
        vectors = [tuple(flat_data[c * width:(c + 1) * width])
                   for c in range(depth)]
        trace = oracle.query(vectors)
        return tuple(bit for cycle in trace for bit in cycle)

    def oracle_batch_fn(flat_batch):
        sequences = [[tuple(flat[c * width:(c + 1) * width])
                      for c in range(depth)] for flat in flat_batch]
        return oracle.query_batch_flat(sequences)

    tie_inputs = sorted({mapping[f"{q}@0"] for q in tie_nets})
    result = comb_sat_attack(merged_view, tie_inputs, oracle_fn,
                             max_dips=max_dips, time_budget=time_budget,
                             oracle_batch_fn=oracle_batch_fn)
    if not result.success:
        return RemovalAttempt(
            success=False, stripped_registers=tuple(suspects),
            tie_values=None, n_dips=result.n_dips, verified=False,
            reason=f"tie solving stopped: {result.stop_reason}")

    tie_values = {net.removeprefix("tie::"): value
                  for net, value in result.key.items()}

    # Verify: fold the ties into the sequential stripped circuit and BMC
    # against the original, from reset, without any key prefix.
    tied = specialise_on_inputs(
        stripped, {q: (1 if tie_values[q] else 0) for q in tie_nets},
        name="removal_tied")
    if verify_depth is None:
        verify_depth = locked.config.kappa + locked.config.kappa_s + 4
    check = bounded_equivalence(locked.original, tied, depth=verify_depth)
    return RemovalAttempt(
        success=bool(check.equivalent),
        stripped_registers=tuple(suspects),
        tie_values=tie_values,
        n_dips=result.n_dips,
        verified=bool(check.equivalent),
        reason="" if check.equivalent else "tie constants fail BMC",
    )


def _merge_inputs(netlist, mapping):
    """Rename inputs so aliased names collapse into single shared inputs."""
    merged = netlist.__class__(netlist.name + "_merged")
    added = set()
    for net in netlist.inputs:
        target = mapping.get(net, net)
        if target not in added:
            merged.add_input(target)
            added.add(target)
    for net, gate in netlist.gates.items():
        merged.add_gate(mapping.get(net, net), gate.op,
                        [mapping.get(s, s) for s in gate.inputs])
    for q, flop in netlist.flops.items():
        merged.add_flop(mapping.get(q, q), mapping.get(flop.d, flop.d),
                        flop.init)
    for net in netlist.outputs:
        merged.add_output(mapping.get(net, net))
    return merged.validate()
