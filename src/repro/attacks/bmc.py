"""Bounded model checking for sequential equivalence.

Used by the sequential SAT attack to verify a candidate key beyond the
current unrolling depth, and by tests to prove functional preservation of
the locking/re-encoding transforms up to a bound.

The check builds one combinational problem: the device-under-test unrolled
``offset + depth`` cycles (the first ``offset`` cycles driven by a fixed
stimulus prefix, e.g. the key sequence), the reference unrolled ``depth``
cycles, both reading the *same* free input variables for the compared
window, plus a "some output differs" miter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf import encode, miter_different_outputs
from repro.errors import AttackError
from repro.netlist import merged
from repro.sat import Solver
from repro.unroll import unroll


@dataclass
class BmcResult:
    """Outcome of a bounded equivalence check."""

    equivalent: bool
    depth: int
    counterexample: list | None  # per-cycle input bit tuples (shared window)
    solver_stats: dict

    def __bool__(self):
        return self.equivalent


def bounded_equivalence(reference, dut, depth, prefix_vectors=(), solver=None):
    """Check ``dut`` (after a fixed stimulus prefix) against ``reference``.

    ``prefix_vectors`` is a sequence of input bit-tuples applied to ``dut``
    for its first cycles (the key sequence, for a locked circuit); after
    the prefix, both circuits read the same inputs and must produce the
    same outputs for ``depth`` cycles. Both circuits must expose identical
    primary-input name lists and equally many outputs.
    """
    if reference.inputs != dut.inputs:
        raise AttackError("reference and dut must share primary input names")
    if len(reference.outputs) != len(dut.outputs):
        raise AttackError("reference and dut must have equally many outputs")
    if depth <= 0:
        raise AttackError(f"depth must be positive, got {depth}")
    offset = len(prefix_vectors)
    width = len(dut.inputs)
    for cycle, vector in enumerate(prefix_vectors):
        if len(vector) != width:
            raise AttackError(
                f"prefix vector {cycle} has width {len(vector)}, expected {width}"
            )

    dut_unrolled = unroll(dut, offset + depth, name="bmc_dut")
    ref_unrolled = unroll(reference, depth, name="bmc_ref")

    # Rename the reference copy: its cycle-c inputs become the dut's
    # cycle-(offset+c) inputs (shared variables); everything else gets a
    # distinguishing prefix.
    mapping = {}
    for cycle in range(depth):
        for net in reference.inputs:
            mapping[ref_unrolled.input_net(net, cycle)] = \
                dut_unrolled.input_net(net, offset + cycle)
    for net in ref_unrolled.netlist.nets():
        if net not in mapping:
            mapping[net] = "ref_" + net
    ref_renamed = ref_unrolled.netlist.renamed(mapping, name="bmc_ref")

    problem = dut_unrolled.netlist.copy(name="bmc_problem")
    merged(problem, ref_renamed)
    problem.validate()

    circuit = encode(problem)
    dut_outs = []
    ref_outs = []
    for cycle in range(depth):
        dut_outs.extend(dut_unrolled.outputs_at(offset + cycle))
        ref_outs.extend(
            mapping[net] for net in ref_unrolled.outputs_at(cycle)
        )
    miter_different_outputs(circuit, dut_outs, ref_outs)

    solver = solver if solver is not None else Solver()
    if not solver.add_cnf(circuit.cnf):
        return BmcResult(True, depth, None, solver.stats())

    # Pin the dut's prefix inputs to the provided vectors.
    for cycle, vector in enumerate(prefix_vectors):
        for net, bit in zip(dut.inputs, vector):
            lit = circuit.lit(dut_unrolled.input_net(net, cycle), bool(bit))
            if not solver.add_clause([lit]):
                return BmcResult(True, depth, None, solver.stats())

    if not solver.solve():
        return BmcResult(True, depth, None, solver.stats())

    model = solver.model()
    counterexample = []
    for cycle in range(depth):
        vector = tuple(
            model[circuit.var_of[dut_unrolled.input_net(net, offset + cycle)]]
            for net in dut.inputs
        )
        counterexample.append(vector)
    return BmcResult(False, depth, counterexample, solver.stats())
