"""Attacks on locked circuits: SAT-based key recovery and removal analysis."""

from repro.attacks.bmc import BmcResult, bounded_equivalence
from repro.attacks.comb_sat import CombSatResult, DipEngine, comb_sat_attack
from repro.attacks.oracle import SimulationOracle
from repro.attacks.removal import (
    RemovalAttempt,
    SccReport,
    attempt_removal,
    scc_report,
    separable_registers,
)
from repro.attacks.key_space import KeySpaceTrace, key_space_trace
from repro.attacks.stg import (
    StgReport,
    extract_stg,
    stg_report,
    terminal_sccs,
)
from repro.attacks.seq_sat import (
    SeqAttackResult,
    attack_locked_circuit,
    estimate_min_unroll_depth,
    sequential_sat_attack,
    unrolled_attack_view,
)

__all__ = [
    "BmcResult",
    "CombSatResult",
    "DipEngine",
    "KeySpaceTrace",
    "RemovalAttempt",
    "SccReport",
    "SeqAttackResult",
    "SimulationOracle",
    "StgReport",
    "extract_stg",
    "key_space_trace",
    "stg_report",
    "terminal_sccs",
    "attack_locked_circuit",
    "attempt_removal",
    "bounded_equivalence",
    "comb_sat_attack",
    "estimate_min_unroll_depth",
    "scc_report",
    "separable_registers",
    "sequential_sat_attack",
    "unrolled_attack_view",
]
