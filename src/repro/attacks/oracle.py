"""Input/output oracle.

The SAT-attack threat model grants the attacker black-box access to an
activated chip: apply any input sequence from reset, observe the output
sequence. :class:`SimulationOracle` provides exactly that interface on top
of the original netlist and counts queries for reporting.

Accounting distinguishes *calls* from *patterns*: ``query_count`` is the
number of oracle invocations (tester sessions), ``pattern_count`` the
number of input sequences simulated.  A serial DIP loop issues one call
per pattern so the two agree; a batched loop (:meth:`query_batch`) runs a
whole miter round in one word-parallel call, so ``pattern_count`` is the
number that stays comparable to the serial loop.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.sim.seq import SequentialSimulator


class SimulationOracle:
    """Black-box functional oracle over the original circuit."""

    def __init__(self, original_netlist):
        self._netlist = original_netlist
        self._sim = SequentialSimulator(original_netlist)
        self.query_count = 0
        self.pattern_count = 0

    @property
    def input_width(self):
        return len(self._netlist.inputs)

    @property
    def output_width(self):
        return len(self._netlist.outputs)

    def _check_widths(self, vectors):
        """Validate stimulus widths in one pass over a whole batch."""
        if all(len(vector) == self.input_width for vector in vectors):
            return
        for cycle, vector in enumerate(vectors):
            if len(vector) != self.input_width:
                raise AttackError(
                    f"cycle {cycle}: oracle stimulus width {len(vector)} "
                    f"!= {self.input_width}"
                )

    def query(self, input_vectors):
        """Run one sequence from reset; returns per-cycle output tuples."""
        input_vectors = list(input_vectors)
        self._check_widths(input_vectors)
        self.query_count += 1
        self.pattern_count += 1
        return self._sim.run_vectors(input_vectors)

    def query_batch(self, sequences):
        """Run many same-length sequences from reset in one simulation.

        ``sequences`` is a list of input sequences (each a list of
        per-cycle vectors, all the same cycle count).  Returns one trace
        per sequence, each bit-for-bit what :meth:`query` would return —
        the batch is packed into machine words and run through the
        word-parallel :meth:`SequentialSimulator.run_pattern_matrix`
        path, so the whole batch costs roughly one serial query.
        Counts as ONE ``query_count`` call and ``len(sequences)``
        ``pattern_count`` patterns.
        """
        sequences = [list(seq) for seq in sequences]
        if not sequences:
            return []
        lengths = {len(seq) for seq in sequences}
        if len(lengths) != 1:
            raise AttackError(
                f"query_batch needs same-length sequences, got cycle "
                f"counts {sorted(lengths)}")
        for seq in sequences:
            self._check_widths(seq)
        self.query_count += 1
        self.pattern_count += len(sequences)
        n_cycles = lengths.pop()
        per_cycle = [[seq[cycle] for seq in sequences]
                     for cycle in range(n_cycles)]
        matrix = self._sim.run_pattern_matrix(per_cycle)
        return [[matrix[cycle][j] for cycle in range(n_cycles)]
                for j in range(len(sequences))]

    def query_flat(self, input_vectors):
        """Like :meth:`query` but flattened cycle-major into one tuple."""
        trace = self.query(input_vectors)
        return tuple(bit for cycle in trace for bit in cycle)

    def query_batch_flat(self, sequences):
        """Like :meth:`query_batch` but each trace flattened cycle-major."""
        return [tuple(bit for cycle in trace for bit in cycle)
                for trace in self.query_batch(sequences)]
