"""Input/output oracle.

The SAT-attack threat model grants the attacker black-box access to an
activated chip: apply any input sequence from reset, observe the output
sequence. :class:`SimulationOracle` provides exactly that interface on top
of the original netlist and counts queries for reporting.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.sim.seq import SequentialSimulator


class SimulationOracle:
    """Black-box functional oracle over the original circuit."""

    def __init__(self, original_netlist):
        self._netlist = original_netlist
        self._sim = SequentialSimulator(original_netlist)
        self.query_count = 0

    @property
    def input_width(self):
        return len(self._netlist.inputs)

    @property
    def output_width(self):
        return len(self._netlist.outputs)

    def query(self, input_vectors):
        """Run one sequence from reset; returns per-cycle output tuples."""
        for cycle, vector in enumerate(input_vectors):
            if len(vector) != self.input_width:
                raise AttackError(
                    f"cycle {cycle}: oracle stimulus width {len(vector)} "
                    f"!= {self.input_width}"
                )
        self.query_count += 1
        return self._sim.run_vectors(list(input_vectors))

    def query_flat(self, input_vectors):
        """Like :meth:`query` but flattened cycle-major into one tuple."""
        trace = self.query(input_vectors)
        return tuple(bit for cycle in trace for bit in cycle)
