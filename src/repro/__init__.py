"""Reproduction of TriLock (DATE 2022) — sequential logic locking with
tunable corruptibility and resilience to SAT and removal attacks.

Public API highlights:

* :mod:`repro.netlist` — gate-level IR, ``.bench`` I/O, logic builder
* :mod:`repro.sim` — bit-parallel combinational/sequential simulation
* :mod:`repro.cnf` / :mod:`repro.sat` — Tseitin encoding and CDCL solver
* :mod:`repro.unroll` — sequential-to-combinational unrolling
* :mod:`repro.core` — the TriLock locking flow and its theory helpers
* :mod:`repro.attacks` — SAT-based and removal attacks
* :mod:`repro.api` — first-class scheme/attack plugins: registries,
  spec strings, and the scheme x attack campaign matrix (the canonical
  door for new defenses and adversaries; the modules above stay as the
  implementations the built-in plugins wrap)
* :mod:`repro.metrics` — corruptibility, resilience, overhead metrics
* :mod:`repro.bench` — benchmark circuits (embedded + synthetic suite)
* :mod:`repro.experiments` — regeneration of every paper table/figure
"""

__version__ = "0.1.0"
